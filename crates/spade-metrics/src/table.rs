//! Fixed-width plain-text tables for the paper-style harness binaries.
//!
//! Every `spade-bench` binary prints its table/figure in the same row
//! format the paper uses, so EXPERIMENTS.md can juxtapose paper values and
//! measured values directly.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}  ");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration given in microseconds the way the paper's tables do
/// (`< 1us` becomes `-`).
pub fn fmt_us(us: f64) -> String {
    if us < 1.0 {
        "-".to_string()
    } else if us >= 1_000_000.0 {
        format!("{:.1}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.0}us")
    }
}

/// Formats a speedup factor (`1234.5` -> `1.2e3x`-style when large).
pub fn fmt_speedup(x: f64) -> String {
    if x >= 10_000.0 {
        format!("{x:.2e}x")
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Both value cells start at the same column.
        let col_a = lines[2].find('1').unwrap();
        let col_b = lines[3].find("22").unwrap();
        assert_eq!(col_a, col_b);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.num_rows(), 1);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn duration_formatting_matches_paper_convention() {
        assert_eq!(fmt_us(0.4), "-");
        assert_eq!(fmt_us(12.0), "12us");
        assert_eq!(fmt_us(3_400.0), "3.4ms");
        assert_eq!(fmt_us(2_000_000.0), "2.0s");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(3.25), "3.2x");
        assert!(fmt_speedup(1_960_000.0).contains('e'));
    }
}
