//! Engine-state snapshots (the "Storage system (DFS)" box of the paper's
//! Fig. 4 architecture).
//!
//! In production the transaction graph and its peeling state outlive any
//! single process: Grab's pipeline loads the graph from a distributed file
//! system, and a restarted detector must resume **without** re-peeling
//! millions of vertices. A snapshot stores the graph (vertices, weights,
//! edges) *and* the peeling sequence with its weights, so
//! [`load_engine`] restores in O(|V| + |E|) straight into serving — no
//! static peel.
//!
//! Format: a small length-prefixed binary layout built on [`bytes`]
//! (magic + version header, little-endian fixed-width integers, `f64`
//! bits). Written via any `io::Write`, read via any `io::Read`.

use crate::engine::{SpadeConfig, SpadeEngine};
use crate::metric::DensityMetric;
use crate::peel::PeelingOutcome;
use crate::state::PeelingState;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spade_graph::{DynamicGraph, GraphError, VertexId};
use std::io::{Read, Write};

/// Snapshot magic: "SPDE".
const MAGIC: u32 = 0x5350_4445;
/// Current snapshot format version.
const VERSION: u32 = 1;

/// Errors raised while decoding a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Wrong magic number (not a Spade snapshot).
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid payload.
    Corrupt(&'static str),
    /// The decoded graph violated model invariants.
    Graph(GraphError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}: not a Spade snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Graph(e) => write!(f, "snapshot violates graph invariants: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> Self {
        SnapshotError::Graph(e)
    }
}

/// Serializes the engine's graph and peeling state into `writer`.
pub fn save_engine<M: DensityMetric, W: Write>(
    engine: &SpadeEngine<M>,
    mut writer: W,
) -> Result<(), SnapshotError> {
    let bytes = encode(engine.graph(), engine.state());
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// Restores an engine from a snapshot, resuming incremental service
/// without a static peel. The metric is supplied by the caller (snapshots
/// carry data, not code).
pub fn load_engine<M: DensityMetric, R: Read>(
    metric: M,
    config: SpadeConfig,
    mut reader: R,
) -> Result<SpadeEngine<M>, SnapshotError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let (graph, state) = decode(Bytes::from(raw))?;
    Ok(SpadeEngine::from_parts(graph, state, metric, config))
}

fn encode(graph: &DynamicGraph, state: &PeelingState) -> Bytes {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let mut buf = BytesMut::with_capacity(24 + n * 8 + m * 20 + state.len() * 12);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for u in graph.vertices() {
        buf.put_f64_le(graph.vertex_weight(u));
    }
    for (src, dst, w) in graph.iter_edges() {
        buf.put_u32_le(src.0);
        buf.put_u32_le(dst.0);
        buf.put_f64_le(w);
    }
    // Peeling state, in physical (rank) order.
    buf.put_u64_le(state.len() as u64);
    for (&u, &d) in state.seq_phys().iter().zip(state.delta_phys()) {
        buf.put_u32_le(u.0);
        buf.put_f64_le(d);
    }
    buf.freeze()
}

fn decode(mut buf: Bytes) -> Result<(DynamicGraph, PeelingState), SnapshotError> {
    if buf.remaining() < 24 {
        return Err(SnapshotError::Corrupt("truncated header"));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    if buf.remaining() < n * 8 {
        return Err(SnapshotError::Corrupt("truncated vertex table"));
    }
    let mut graph = DynamicGraph::with_capacity(n);
    for _ in 0..n {
        graph.add_vertex(buf.get_f64_le())?;
    }
    // 4 (src) + 4 (dst) + 8 (weight) bytes per edge.
    if buf.remaining() < m * 16 {
        return Err(SnapshotError::Corrupt("truncated edge table"));
    }
    for _ in 0..m {
        let src = VertexId(buf.get_u32_le());
        let dst = VertexId(buf.get_u32_le());
        let w = buf.get_f64_le();
        graph.insert_edge(src, dst, w)?;
    }
    if buf.remaining() < 8 {
        return Err(SnapshotError::Corrupt("missing peeling state header"));
    }
    let len = buf.get_u64_le() as usize;
    if len != n {
        return Err(SnapshotError::Corrupt("peeling state does not cover the vertex set"));
    }
    if buf.remaining() < len * 12 {
        return Err(SnapshotError::Corrupt("truncated peeling state"));
    }
    // Rebuild via logical order (PeelingOutcome is logical-first).
    let mut order = Vec::with_capacity(len);
    let mut weights = Vec::with_capacity(len);
    for _ in 0..len {
        order.push(VertexId(buf.get_u32_le()));
        weights.push(buf.get_f64_le());
    }
    order.reverse();
    weights.reverse();
    for u in &order {
        if !graph.contains_vertex(*u) {
            return Err(SnapshotError::Corrupt("peeling state references unknown vertex"));
        }
    }
    let outcome = PeelingOutcome {
        order,
        weights,
        best_prefix: 0,
        best_density: 0.0,
        total_weight: graph.total_weight(),
    };
    let state = PeelingState::from_outcome(&outcome);
    if state.len() != graph.num_vertices() {
        return Err(SnapshotError::Corrupt("duplicate vertices in peeling state"));
    }
    Ok((graph, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn build_engine() -> SpadeEngine<WeightedDensity> {
        // Deliberately edge-heavy relative to the vertex count so the
        // decoder's per-section length checks are exercised with no slack
        // from later sections.
        let mut e = SpadeEngine::new(WeightedDensity);
        for a in 0..24u32 {
            for b in 0..24u32 {
                if a != b {
                    e.insert_edge(v(a), v(b), (a + b + 1) as f64).unwrap();
                }
            }
        }
        e.insert_edge(v(30), v(2), 3.5).unwrap();
        e
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let mut original = build_engine();
        let det_before = original.detect();
        let mut bytes = Vec::new();
        save_engine(&original, &mut bytes).unwrap();

        let mut restored =
            load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice()).unwrap();
        assert_eq!(restored.graph().num_vertices(), original.graph().num_vertices());
        assert_eq!(restored.graph().num_edges(), original.graph().num_edges());
        assert_eq!(restored.state().logical_order(), original.state().logical_order());
        let det_after = restored.detect();
        assert_eq!(det_before.size, det_after.size);
        assert!((det_before.density - det_after.density).abs() < 1e-12);
        restored.state().validate_greedy(restored.graph(), 1e-9);
    }

    #[test]
    fn restored_engine_keeps_streaming_incrementally() {
        let original = build_engine();
        let mut bytes = Vec::new();
        save_engine(&original, &mut bytes).unwrap();
        let mut restored =
            load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice()).unwrap();
        restored.insert_edge(v(8), v(9), 42.0).unwrap();
        restored.delete_edge(v(7), v(2)).unwrap();
        assert_eq!(restored.state().logical_order(), crate::peel::peel(restored.graph()).order);
    }

    #[test]
    fn rejects_garbage() {
        let garbage = vec![0u8; 64];
        let err = load_engine(WeightedDensity, SpadeConfig::default(), garbage.as_slice());
        assert!(matches!(err, Err(SnapshotError::BadMagic(_))));

        let mut short = Vec::new();
        save_engine(&build_engine(), &mut short).unwrap();
        short.truncate(short.len() - 10);
        let err = load_engine(WeightedDensity, SpadeConfig::default(), short.as_slice());
        assert!(matches!(err, Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = Vec::new();
        save_engine(&build_engine(), &mut bytes).unwrap();
        bytes[4] = 99; // clobber version
        let err = load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice());
        assert!(matches!(err, Err(SnapshotError::BadVersion(99))));
    }

    #[test]
    fn empty_engine_roundtrip() {
        let original: SpadeEngine<WeightedDensity> = SpadeEngine::new(WeightedDensity);
        let mut bytes = Vec::new();
        save_engine(&original, &mut bytes).unwrap();
        let mut restored =
            load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice()).unwrap();
        assert_eq!(restored.detect(), crate::state::Detection::EMPTY);
    }
}
