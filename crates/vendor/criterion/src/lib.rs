//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition surface the workspace's `benches/`
//! use — `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `BenchmarkId`, `Bencher::iter`, plus the
//! `criterion_group!` / `criterion_main!` macros — over a simple
//! wall-clock harness: warm up briefly, time batches until the measurement
//! budget is spent, report the median ns/iter (and element throughput when
//! declared). No statistics beyond that; relations between variants are
//! what the harness is for, not confidence intervals.
//!
//! Environment knobs: `SPADE_BENCH_MS` (measurement budget per benchmark,
//! default 300).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared workload per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and parameter into one label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

/// Anything `bench_function` accepts as a label.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Runs one benchmark body repeatedly under timing.
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
}

impl Bencher {
    /// Times `body`, collecting per-iteration samples until the budget is
    /// spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warmup: let caches/allocators settle and estimate cost.
        let warmup_started = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_started.elapsed() < self.budget / 10 || warmup_iters < 3 {
            std::hint::black_box(body());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_per_iter = warmup_started.elapsed().as_secs_f64() / warmup_iters as f64;
        // Batch so each sample costs ~1/50 of the budget.
        let batch = ((self.budget.as_secs_f64() / 50.0 / est_per_iter.max(1e-9)) as u64).max(1);
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// One benchmark group: shared prefix and reporting config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the sample count here is governed
    /// by the time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (time budget governs instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<L: IntoBenchmarkLabel, F: FnMut(&mut Bencher)>(
        &mut self,
        id: L,
        mut body: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut bencher = Bencher { samples: Vec::new(), budget: self.criterion.budget };
        body(&mut bencher);
        report(&label, &bencher.samples, self.throughput);
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to each benchmark function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("SPADE_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(300);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), criterion: self, throughput: None }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<L: IntoBenchmarkLabel, F: FnMut(&mut Bencher)>(
        &mut self,
        id: L,
        mut body: F,
    ) -> &mut Self {
        let label = id.into_label();
        let mut bencher = Bencher { samples: Vec::new(), budget: self.budget };
        body(&mut bencher);
        report(&label, &bencher.samples, None);
        self
    }
}

fn report(label: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<60} no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let ns = median * 1e9;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{label:<60} {ns:>14.1} ns/iter ({} samples){extra}", sorted.len());
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("spin", "tiny"), |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                acc
            });
        });
        group.finish();
    }

    #[test]
    fn harness_runs_quickly() {
        std::env::set_var("SPADE_BENCH_MS", "10");
        criterion_group!(benches, spin);
        benches();
        std::env::remove_var("SPADE_BENCH_MS");
    }
}
