//! # Shard server: one detection engine behind the wire protocol
//!
//! The process-level counterpart of an in-process shard: a single
//! [`SpadeService`] worker exposed over the [`crate::wire`] protocol, so
//! a router tier ([`crate::router`]) can treat N independent *processes*
//! exactly like the sharded runtime treats its N worker threads. This is
//! ROADMAP open item 1 — the paper's §4 parallel incremental peeling
//! promoted from threads to processes.
//!
//! Besides the v2 ingest surface (`Edge` / `Batch` / `BatchBudget` /
//! `Flush` / `Detect` / `Stats` / `Metrics` / `Shutdown`), a shard
//! server answers the protocol-v3 shard operations:
//!
//! * **`Region { hops }`** → [`WireFrame::RegionReply`]: exports the
//!   engine's candidate region (community + `hops`-hop frontier through
//!   the persist subgraph codec) for the router's cross-shard repair
//!   pass. The request rides the worker's FIFO ingest queue, so the
//!   reply reflects every edge acknowledged before it.
//! * **`MigrateOut { members }`** → [`WireFrame::SliceReply`]: extracts
//!   **and evicts** the induced slice over `members` — the source half
//!   of a component migration, serialized as a snapshot in flight.
//! * **`Absorb { slice }`** → [`WireFrame::AbsorbReply`]: replays a
//!   migrated slice into the local engine (the target half).
//! * **`Replicate { owner, seq, edges }`** → `Ack`: appends a raw-edge
//!   batch to the **standby journal** this server keeps on behalf of
//!   peer shard `owner`. The journal is the recovery substrate: the
//!   router acknowledges an edge upstream only after both the home
//!   shard *and* its replica acked, so a SIGKILLed shard can always be
//!   rebuilt from its replica's journal with zero acked-edge loss.
//!   Sequence numbers are per-owner and contiguous; a duplicate seq is
//!   acked idempotently (`accepted: 0`), a gap is a protocol error.
//! * **`Bootstrap { owner, after }`** → a stream of
//!   [`WireFrame::BootstrapChunk`]s: replays the journal held for
//!   `owner` beyond `after`, one chunk per journaled batch, terminated
//!   by a `done` chunk carrying the journal's high-water mark. A
//!   restarted shard reseeds by replaying these chunks as ordinary
//!   batches — raw edges, not state snapshots, because detection is a
//!   function of the final edge multiset and the engine re-derives all
//!   metric state.
//!
//! The fan-in at a shard server is one router connection (plus an
//! occasional operator probe), so connections are served by plain
//! blocking threads — the readiness reactor stays dedicated to the
//! many-producer front end. The accept loop reuses the reactor's
//! `poll(2)` binding to stay interruptible by the stop flag.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use spade_core::service::{MigrationSlice, SpadeService, TrySubmit};
use spade_graph::VertexId;

use crate::reactor::wait_readable;
use crate::wire::{
    write_frame, AbsorbReply, BootstrapChunk, DetectionReply, FrameDecoder, MetricsReply,
    RegionReply, StatsReply, WireFrame, WireSlice, MAX_BATCH_EDGES, MAX_FRAME_BYTES,
    MAX_MIGRATE_MEMBERS, MAX_SNAPSHOT_BYTES, METRICS_VERSION,
};

/// How long a blocked read waits before re-checking the stop flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// A raw weighted edge as it travels in `Replicate`/`Batch` frames.
type RawEdge = (VertexId, VertexId, f64);
/// One journaled batch: its replication sequence plus the raw edges.
type JournalBatch = (u64, Vec<RawEdge>);

/// Tuning for a [`ShardServer`].
#[derive(Clone, Debug)]
pub struct ShardServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port; see
    /// [`ShardServer::local_addr`]).
    pub addr: String,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig { addr: "127.0.0.1:0".into() }
    }
}

/// One standby journal: the contiguous, seq-stamped raw-edge batches
/// replicated here on behalf of a peer shard.
#[derive(Debug, Default)]
struct Journal {
    /// Highest contiguous sequence number appended (0 = empty; the
    /// router numbers batches from 1).
    last_seq: u64,
    /// `(seq, edges)` in append order.
    entries: Vec<JournalBatch>,
}

/// Per-owner standby journals.
#[derive(Debug, Default)]
struct JournalSet {
    journals: std::collections::HashMap<u32, Journal>,
}

impl JournalSet {
    /// Appends one replicated batch. Returns `Ok(accepted)` — the count
    /// of newly journaled edges, 0 for an idempotent duplicate — or an
    /// error message for a sequence gap.
    ///
    /// An **empty** batch is a watermark sync, not data: it fast-forwards
    /// `last_seq` without an entry. The router sends one during recovery
    /// to the replacement process standing in as replica for a shard
    /// whose earlier batches were journaled on the dead incarnation —
    /// those batches are applied on their (live) home, and re-journaling
    /// them is exactly the double-failure cover the design excludes, so
    /// the fresh journal only needs to accept the next sequence.
    fn append(
        &mut self,
        owner: u32,
        seq: u64,
        edges: Vec<(VertexId, VertexId, f64)>,
    ) -> Result<u64, &'static str> {
        let journal = self.journals.entry(owner).or_default();
        if seq <= journal.last_seq {
            // The router retried a batch the journal already holds
            // (e.g. after a dropped ack): confirm without re-appending.
            return Ok(0);
        }
        if edges.is_empty() {
            journal.last_seq = seq;
            return Ok(0);
        }
        if seq != journal.last_seq + 1 {
            return Err("replicate sequence gap");
        }
        let accepted = edges.len() as u64;
        journal.entries.push((seq, edges));
        journal.last_seq = seq;
        Ok(accepted)
    }

    /// The journaled batches for `owner` with sequence beyond `after`,
    /// plus the journal's high-water mark.
    fn replay(&self, owner: u32, after: u64) -> (u64, Vec<JournalBatch>) {
        match self.journals.get(&owner) {
            Some(journal) => {
                let tail =
                    journal.entries.iter().filter(|(seq, _)| *seq > after).cloned().collect();
                (journal.last_seq, tail)
            }
            None => (0, Vec::new()),
        }
    }
}

/// A running shard server: a bound listener plus the accept thread
/// fanning connections out to blocking handler threads.
pub struct ShardServer {
    service: Arc<SpadeService>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl ShardServer {
    /// Binds the listener and spawns the accept thread around
    /// `service`. The service stays shared — callers keep their handle
    /// for local draining and reclaim it with
    /// [`into_service`](Self::into_service) after [`stop`](Self::stop).
    pub fn spawn(service: Arc<SpadeService>, config: &ShardServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let journals = Arc::new(Mutex::new(JournalSet::default()));
        let accept = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("spade-shard-accept".into())
                .spawn(move || accept_loop(listener, service, journals, stop))
                .expect("spawn accept thread")
        };
        Ok(ShardServer { service, local_addr, stop, accept: Some(accept) })
    }

    /// The bound address (the chosen port when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once a `Shutdown` frame (or [`stop`](Self::stop)) has
    /// asked the server to wind down.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Asks the accept loop and every connection thread to wind down,
    /// then joins them. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let handlers = accept.join().expect("accept thread panicked");
            for h in handlers {
                h.join().expect("connection thread panicked");
            }
        }
    }

    /// Stops the server and hands the service handle back (sole owner
    /// after the connection threads exit), so the host can drain and
    /// shut the engine down.
    pub fn into_service(mut self) -> Arc<SpadeService> {
        self.stop();
        Arc::clone(&self.service)
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<SpadeService>,
    journals: Arc<Mutex<JournalSet>>,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match wait_readable(listener.as_raw_fd(), POLL_TICK) {
            Ok(true) => {}
            Ok(false) => continue,
            Err(_) => break,
        }
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
            Err(_) => break,
        };
        handlers.retain(|h| !h.is_finished());
        let service = Arc::clone(&service);
        let journals = Arc::clone(&journals);
        let stop = Arc::clone(&stop);
        let handler = std::thread::Builder::new()
            .name("spade-shard-conn".into())
            .spawn(move || serve_connection(stream, &service, &journals, &stop))
            .expect("spawn connection thread");
        handlers.push(handler);
    }
    handlers
}

/// Reads frames off one connection until EOF, error, or stop.
fn serve_connection(
    mut stream: TcpStream,
    service: &SpadeService,
    journals: &Mutex<JournalSet>,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => decoder.extend(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    if !apply(frame, service, journals, stop, &mut stream) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing can no longer be trusted: describe the
                    // corruption and drop the connection.
                    let _ =
                        write_frame(&mut stream, &WireFrame::Error { message: err.to_string() });
                    return;
                }
            }
        }
    }
}

/// Applies one decoded frame; `false` closes the connection.
fn apply(
    frame: WireFrame,
    service: &SpadeService,
    journals: &Mutex<JournalSet>,
    stop: &AtomicBool,
    out: &mut TcpStream,
) -> bool {
    let mut reply = |frame: &WireFrame| write_frame(out, frame).and_then(|()| out.flush()).is_ok();
    match frame {
        WireFrame::Edge { src, dst, raw } => match service.try_submit(src, dst, raw) {
            TrySubmit::Queued => reply(&WireFrame::Ack { accepted: 1 }),
            TrySubmit::Full => reply(&WireFrame::Busy { accepted: 0 }),
            TrySubmit::Closed => {
                reply(&WireFrame::Error { message: "shard has shut down".into() });
                false
            }
        },
        WireFrame::Batch { edges } => submit_batch(service, edges, None, &mut reply),
        WireFrame::BatchBudget { budget_us, edges } => {
            let budget = Duration::from_micros(u64::from(budget_us));
            submit_batch(service, edges, Some(budget), &mut reply)
        }
        WireFrame::Flush => {
            if service.flush() {
                reply(&WireFrame::Ack { accepted: 0 })
            } else {
                reply(&WireFrame::Error { message: "shard has shut down".into() });
                false
            }
        }
        WireFrame::Detect => {
            // Read-your-acks: a `Batch` is acked once *enqueued*, so
            // drain the worker first — the detection must reflect every
            // edge this connection was already acknowledged for.
            if !service.barrier() {
                reply(&WireFrame::Error { message: "shard has shut down".into() });
                return false;
            }
            let det = service.current_detection();
            reply(&WireFrame::Detection(DetectionReply {
                size: det.size as u64,
                density: det.density,
                updates_applied: det.updates_applied,
                members: det.members.to_vec(),
            }))
        }
        WireFrame::Stats => {
            // Same read-your-acks barrier: `updates_applied` feeds the
            // router's acked == applied exactly-once audit, which must
            // not observe a still-queued suffix.
            if !service.barrier() {
                reply(&WireFrame::Error { message: "shard has shut down".into() });
                return false;
            }
            let stats = service.stats();
            reply(&WireFrame::StatsReply(StatsReply {
                shards: 1,
                updates_applied: stats.updates_applied,
                queue_depth: stats.queue_depth as u64,
                connections: 1,
                frames: 0,
                edges_accepted: stats.updates_applied,
                busy_replies: 0,
                malformed_frames: 0,
                uptime_secs: stats.uptime_secs,
                shard_queue_depths: vec![stats.queue_depth as u64],
            }))
        }
        WireFrame::Metrics => {
            let snapshot = service.metrics();
            reply(&WireFrame::MetricsReply(MetricsReply {
                version: METRICS_VERSION,
                exposition: snapshot.render_prometheus(),
            }))
        }
        WireFrame::Shutdown => {
            reply(&WireFrame::Ack { accepted: 0 });
            stop.store(true, Ordering::Release);
            false
        }
        WireFrame::Region { hops } => match service.candidate_region(hops as usize) {
            Some(region)
                if region.members.len() <= MAX_MIGRATE_MEMBERS
                    && region.encoded.len() <= MAX_SNAPSHOT_BYTES =>
            {
                reply(&WireFrame::RegionReply(RegionReply {
                    size: region.size as u64,
                    density: region.density,
                    updates_applied: region.updates_applied,
                    epoch: region.epoch,
                    members: region.members.to_vec(),
                    encoded: region.encoded,
                }))
            }
            Some(_) => {
                reply(&WireFrame::Error { message: "candidate region exceeds frame bounds".into() })
            }
            None => {
                reply(&WireFrame::Error { message: "shard has shut down".into() });
                false
            }
        },
        WireFrame::MigrateOut { members } => {
            match service.migrate_out(Arc::from(members.as_slice())) {
                Some(slice) if slice.encoded.len() <= MAX_SNAPSHOT_BYTES => {
                    reply(&WireFrame::SliceReply(WireSlice {
                        vertices: slice.vertices as u64,
                        edges: slice.edges as u64,
                        edge_weight: slice.edge_weight,
                        updates_applied: slice.updates_applied,
                        encoded: slice.encoded,
                    }))
                }
                Some(_) => reply(&WireFrame::Error {
                    message: "migration slice exceeds frame bounds".into(),
                }),
                None => {
                    reply(&WireFrame::Error { message: "shard has shut down".into() });
                    false
                }
            }
        }
        WireFrame::Absorb { slice } => {
            let slice = MigrationSlice {
                encoded: slice.encoded,
                vertices: slice.vertices as usize,
                edges: slice.edges as usize,
                edge_weight: slice.edge_weight,
                updates_applied: slice.updates_applied,
            };
            match service.absorb(slice) {
                Some(receipt) => reply(&WireFrame::AbsorbReply(AbsorbReply {
                    vertices_touched: receipt.vertices_touched as u64,
                    edges_applied: receipt.edges_applied as u64,
                    rejected: receipt.rejected,
                })),
                None => {
                    reply(&WireFrame::Error { message: "shard has shut down".into() });
                    false
                }
            }
        }
        WireFrame::Replicate { owner, seq, edges } => {
            match journals.lock().append(owner, seq, edges) {
                Ok(accepted) => reply(&WireFrame::Ack { accepted }),
                Err(message) => {
                    reply(&WireFrame::Error { message: message.into() });
                    false
                }
            }
        }
        WireFrame::Bootstrap { owner, after } => {
            let (last_seq, tail) = journals.lock().replay(owner, after);
            for (seq, edges) in tail {
                debug_assert!(edges.len() <= MAX_BATCH_EDGES);
                if !reply(&WireFrame::BootstrapChunk(BootstrapChunk {
                    owner,
                    through: seq,
                    done: false,
                    edges,
                })) {
                    return false;
                }
            }
            reply(&WireFrame::BootstrapChunk(BootstrapChunk {
                owner,
                through: last_seq,
                done: true,
                edges: Vec::new(),
            }))
        }
        // Reply frames arriving at a shard server are a protocol
        // violation: report and drop the connection.
        WireFrame::Ack { .. }
        | WireFrame::Busy { .. }
        | WireFrame::Detection(_)
        | WireFrame::StatsReply(_)
        | WireFrame::MetricsReply(_)
        | WireFrame::RegionReply(_)
        | WireFrame::SliceReply(_)
        | WireFrame::AbsorbReply(_)
        | WireFrame::BootstrapChunk(_)
        | WireFrame::Error { .. } => {
            reply(&WireFrame::Error { message: "reply frame sent to shard server".into() });
            false
        }
    }
}

/// Enqueues a batch as one worker command (the shard-grouped fast
/// path). `submit_batch` blocks while the queue is full, so a
/// well-formed batch is always accepted in full — `Busy` is reserved
/// for oversized frames a router should have chunked.
fn submit_batch(
    service: &SpadeService,
    edges: Vec<(VertexId, VertexId, f64)>,
    budget: Option<Duration>,
    reply: &mut impl FnMut(&WireFrame) -> bool,
) -> bool {
    debug_assert!(edges.len() * 17 < MAX_FRAME_BYTES);
    let accepted = edges.len() as u64;
    if service.submit_batch(edges, budget) {
        reply(&WireFrame::Ack { accepted })
    } else {
        reply(&WireFrame::Error { message: "shard has shut down".into() });
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_core::{SpadeEngine, WeightedDensity};

    fn spawn_server() -> (ShardServer, TcpStream) {
        let engine = SpadeEngine::new(WeightedDensity);
        let service = Arc::new(SpadeService::spawn(engine, None, 1024));
        let server = ShardServer::spawn(service, &ShardServerConfig::default()).expect("bind");
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        (server, stream)
    }

    fn request(stream: &mut TcpStream, frame: &WireFrame) -> WireFrame {
        write_frame(stream, frame).expect("write");
        stream.flush().expect("flush");
        crate::wire::read_frame(stream).expect("read").expect("reply")
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn serves_ingest_and_detect_over_the_wire() {
        let (mut server, mut stream) = spawn_server();
        let edges: Vec<_> = (0..4u32)
            .flat_map(|a| (0..4u32).filter(move |b| a != *b).map(move |b| (v(a), v(b), 5.0)))
            .collect();
        let sent = edges.len() as u64;
        match request(&mut stream, &WireFrame::Batch { edges }) {
            WireFrame::Ack { accepted } => assert_eq!(accepted, sent),
            other => panic!("unexpected reply: {other:?}"),
        }
        assert!(matches!(request(&mut stream, &WireFrame::Flush), WireFrame::Ack { .. }));
        // Region rides the same FIFO queue, so it observes the batch.
        match request(&mut stream, &WireFrame::Region { hops: 1 }) {
            WireFrame::RegionReply(region) => {
                assert_eq!(region.size, 4);
                assert!(region.density > 0.0);
                assert_eq!(region.updates_applied, sent);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match request(&mut stream, &WireFrame::Detect) {
            WireFrame::Detection(det) => assert_eq!(det.size, 4),
            other => panic!("unexpected reply: {other:?}"),
        }
        server.stop();
    }

    #[test]
    fn migrates_a_slice_between_two_servers() {
        let (mut src_server, mut src) = spawn_server();
        let (mut dst_server, mut dst) = spawn_server();
        let edges = vec![(v(1), v(2), 4.0), (v(2), v(1), 4.0), (v(1), v(3), 2.0)];
        request(&mut src, &WireFrame::Batch { edges });
        request(&mut src, &WireFrame::Flush);
        let slice =
            match request(&mut src, &WireFrame::MigrateOut { members: vec![v(1), v(2), v(3)] }) {
                WireFrame::SliceReply(slice) => slice,
                other => panic!("unexpected reply: {other:?}"),
            };
        assert_eq!(slice.edges, 3);
        assert!(!slice.is_empty());
        match request(&mut dst, &WireFrame::Absorb { slice }) {
            WireFrame::AbsorbReply(receipt) => {
                assert_eq!(receipt.edges_applied, 3);
                assert_eq!(receipt.rejected, 0);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        // The slice was evicted at the source and lives on the target.
        match request(&mut src, &WireFrame::Detect) {
            WireFrame::Detection(det) => assert_eq!(det.size, 0),
            other => panic!("unexpected reply: {other:?}"),
        }
        match request(&mut dst, &WireFrame::Region { hops: 1 }) {
            WireFrame::RegionReply(region) => assert!(region.size > 0),
            other => panic!("unexpected reply: {other:?}"),
        }
        src_server.stop();
        dst_server.stop();
    }

    #[test]
    fn journal_is_idempotent_and_replays_in_order() {
        let (mut server, mut stream) = spawn_server();
        let batch1 = vec![(v(1), v(2), 1.0)];
        let batch2 = vec![(v(3), v(4), 2.0), (v(4), v(3), 2.0)];
        match request(
            &mut stream,
            &WireFrame::Replicate { owner: 0, seq: 1, edges: batch1.clone() },
        ) {
            WireFrame::Ack { accepted } => assert_eq!(accepted, 1),
            other => panic!("unexpected reply: {other:?}"),
        }
        match request(
            &mut stream,
            &WireFrame::Replicate { owner: 0, seq: 2, edges: batch2.clone() },
        ) {
            WireFrame::Ack { accepted } => assert_eq!(accepted, 2),
            other => panic!("unexpected reply: {other:?}"),
        }
        // A retried seq is confirmed without double-journaling.
        match request(
            &mut stream,
            &WireFrame::Replicate { owner: 0, seq: 2, edges: batch2.clone() },
        ) {
            WireFrame::Ack { accepted } => assert_eq!(accepted, 0),
            other => panic!("unexpected reply: {other:?}"),
        }
        write_frame(&mut stream, &WireFrame::Bootstrap { owner: 0, after: 0 }).expect("write");
        let mut chunks = Vec::new();
        loop {
            match crate::wire::read_frame(&mut stream).expect("read").expect("chunk") {
                WireFrame::BootstrapChunk(chunk) => {
                    let done = chunk.done;
                    chunks.push(chunk);
                    if done {
                        break;
                    }
                }
                other => panic!("unexpected reply: {other:?}"),
            }
        }
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].edges, batch1);
        assert_eq!(chunks[1].edges, batch2);
        assert!(chunks[2].done && chunks[2].edges.is_empty());
        assert_eq!(chunks[2].through, 2);
        // Resuming beyond seq 1 replays only the tail (entry 2 plus the
        // terminal done chunk).
        write_frame(&mut stream, &WireFrame::Bootstrap { owner: 0, after: 1 }).expect("write");
        let mut tail = Vec::new();
        loop {
            match crate::wire::read_frame(&mut stream).expect("read").expect("chunk") {
                WireFrame::BootstrapChunk(chunk) => {
                    let done = chunk.done;
                    tail.push(chunk);
                    if done {
                        break;
                    }
                }
                other => panic!("unexpected reply: {other:?}"),
            }
        }
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].through, 2);
        assert_eq!(tail[0].edges, batch2);
        // A gap is rejected…
        match request(
            &mut stream,
            &WireFrame::Replicate { owner: 0, seq: 9, edges: batch1.clone() },
        ) {
            WireFrame::Error { message } => assert!(message.contains("gap")),
            other => panic!("unexpected reply: {other:?}"),
        }
        // …and closes the connection (corrupt protocol state). On a
        // fresh connection, an EMPTY batch at the same sequence is a
        // watermark sync (the recovery handshake for a replacement
        // replica): it fast-forwards the journal so the next real batch
        // is contiguous.
        let mut stream = TcpStream::connect(server.local_addr()).expect("reconnect");
        match request(&mut stream, &WireFrame::Replicate { owner: 0, seq: 9, edges: Vec::new() }) {
            WireFrame::Ack { accepted } => assert_eq!(accepted, 0),
            other => panic!("unexpected reply: {other:?}"),
        }
        match request(&mut stream, &WireFrame::Replicate { owner: 0, seq: 10, edges: batch1 }) {
            WireFrame::Ack { accepted } => assert_eq!(accepted, 1),
            other => panic!("unexpected reply: {other:?}"),
        }
        server.stop();
    }
}
