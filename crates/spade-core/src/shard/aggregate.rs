//! Merging per-shard detections into one global view.
//!
//! Each shard publishes its local [`PublishedDetection`] independently;
//! the aggregator folds those snapshots into a global answer — densest
//! community wins, exactly the rule a single engine applies across its
//! own candidate prefixes — plus a per-shard ranking for moderators who
//! drill down ("which shard is hot right now?").

use crate::service::PublishedDetection;
use spade_graph::hash::FxHashSet;

/// One shard's entry in the ranked view.
#[derive(Clone, Debug)]
pub struct ShardDetection {
    /// Shard index.
    pub shard: usize,
    /// That shard's current detection.
    pub detection: PublishedDetection,
}

/// The merged, cluster-wide detection state.
#[derive(Clone, Debug, Default)]
pub struct GlobalDetection {
    /// Index of the shard holding the densest community.
    pub best_shard: usize,
    /// The densest community across shards. Deliberately duplicates
    /// `top[0].detection` so the common "what's the answer" read needs
    /// no index gymnastics — since member lists live behind `Arc`
    /// snapshots, the duplicate costs a pointer clone, not a vec copy.
    /// High-frequency pollers that only need counters should use
    /// `ShardedSpadeService::stats`, which takes no snapshot at all.
    pub best: PublishedDetection,
    /// Top-k shards ranked by detection density (descending; ties break
    /// toward the lower shard index). Every shard appears here, even
    /// when several report overlapping views of one split community —
    /// use [`GlobalDetection::distinct`] for a deduplicated ranking.
    pub top: Vec<ShardDetection>,
    /// [`GlobalDetection::top`] with overlapping candidates deduplicated:
    /// when two shards' member lists intersect (the signature of one
    /// community split by hash routing), only the densest view survives.
    /// This is the ranking reports should show — the raw `top` counts the
    /// same accounts once per shard that sees them.
    pub distinct: Vec<ShardDetection>,
    /// Number of distinct members across **all** shard detections: a
    /// vertex reported by several shards counts once. Always ≤ the sum of
    /// per-shard detection sizes; a gap between the two is exactly the
    /// double-counting the repair pass resolves.
    pub unique_members: usize,
    /// Total updates applied across all shards at snapshot time.
    pub total_updates: u64,
}

/// Folds per-shard snapshots into a [`GlobalDetection`].
#[derive(Clone, Copy, Debug)]
pub struct DetectionAggregator {
    /// Number of ranked entries kept in [`GlobalDetection::top`].
    pub top_k: usize,
}

impl Default for DetectionAggregator {
    fn default() -> Self {
        DetectionAggregator { top_k: 4 }
    }
}

impl DetectionAggregator {
    /// Creates an aggregator keeping `top_k` ranked shard entries.
    pub fn new(top_k: usize) -> Self {
        DetectionAggregator { top_k }
    }

    /// Merges one snapshot per shard (indexed by position).
    pub fn merge(&self, snapshots: Vec<PublishedDetection>) -> GlobalDetection {
        let total_updates = snapshots.iter().map(|d| d.updates_applied).sum();
        // Distinct members across every shard view: overlapping shard
        // detections of one split community count each account once.
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for det in &snapshots {
            for m in det.members.iter() {
                seen.insert(m.0);
            }
        }
        let unique_members = seen.len();
        let mut ranked: Vec<ShardDetection> = snapshots
            .into_iter()
            .enumerate()
            .map(|(shard, detection)| ShardDetection { shard, detection })
            .collect();
        // Densest first; ties toward the lower shard id for determinism.
        ranked.sort_by(|a, b| {
            b.detection.density.total_cmp(&a.detection.density).then_with(|| a.shard.cmp(&b.shard))
        });
        let (best_shard, best) = ranked
            .first()
            .map(|s| (s.shard, s.detection.clone()))
            .unwrap_or((0, PublishedDetection::default()));
        // Overlap-deduplicated ranking: walking densest-first, a
        // candidate sharing any member with an already-kept (denser)
        // candidate is a diluted view of the same community and is
        // dropped.
        seen.clear();
        let mut distinct: Vec<ShardDetection> = Vec::new();
        for entry in &ranked {
            if distinct.len() >= self.top_k {
                break;
            }
            let overlaps = entry.detection.members.iter().any(|m| seen.contains(&m.0));
            if overlaps {
                continue;
            }
            for m in entry.detection.members.iter() {
                seen.insert(m.0);
            }
            distinct.push(entry.clone());
        }
        ranked.truncate(self.top_k);
        GlobalDetection { best_shard, best, top: ranked, distinct, unique_members, total_updates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(size: usize, density: f64, updates: u64) -> PublishedDetection {
        PublishedDetection { size, density, updates_applied: updates, ..Default::default() }
    }

    #[test]
    fn densest_shard_wins() {
        let agg = DetectionAggregator::new(2);
        let global = agg.merge(vec![det(3, 5.0, 10), det(4, 9.0, 20), det(2, 1.0, 5)]);
        assert_eq!(global.best_shard, 1);
        assert_eq!(global.best.size, 4);
        assert_eq!(global.total_updates, 35);
        assert_eq!(global.top.len(), 2);
        assert_eq!(global.top[0].shard, 1);
        assert_eq!(global.top[1].shard, 0);
    }

    #[test]
    fn density_ties_break_to_lower_shard() {
        let agg = DetectionAggregator::default();
        let global = agg.merge(vec![det(3, 7.0, 1), det(3, 7.0, 1)]);
        assert_eq!(global.best_shard, 0);
    }

    #[test]
    fn empty_cluster_merges_to_default() {
        let agg = DetectionAggregator::default();
        let global = agg.merge(Vec::new());
        assert_eq!(global.best.size, 0);
        assert_eq!(global.total_updates, 0);
        assert!(global.top.is_empty());
        assert!(global.distinct.is_empty());
        assert_eq!(global.unique_members, 0);
    }

    fn det_over(members: &[u32], density: f64) -> PublishedDetection {
        PublishedDetection {
            size: members.len(),
            density,
            members: members.iter().map(|&m| spade_graph::VertexId(m)).collect::<Vec<_>>().into(),
            ..Default::default()
        }
    }

    #[test]
    fn overlapping_shard_views_dedupe_in_the_distinct_ranking() {
        // Shards 0 and 2 report overlapping slices of one split
        // community; shard 1 reports a disjoint one. The raw ranking
        // keeps all three, the distinct ranking keeps the densest view
        // per overlap cluster.
        let agg = DetectionAggregator::new(4);
        let global = agg.merge(vec![
            det_over(&[10, 11, 12], 6.0),
            det_over(&[50, 51], 4.0),
            det_over(&[12, 13], 9.0),
        ]);
        assert_eq!(global.top.len(), 3);
        let distinct_shards: Vec<usize> = global.distinct.iter().map(|s| s.shard).collect();
        assert_eq!(distinct_shards, vec![2, 1], "shard 0 overlaps denser shard 2 and is dropped");
        // 10, 11, 12, 13, 50, 51 — member 12 counted once.
        assert_eq!(global.unique_members, 6);
        // `best` is untouched by deduplication.
        assert_eq!(global.best_shard, 2);
    }

    #[test]
    fn disjoint_shard_views_keep_the_full_distinct_ranking() {
        let agg = DetectionAggregator::new(4);
        let global =
            agg.merge(vec![det_over(&[0, 1], 3.0), det_over(&[2, 3], 5.0), det_over(&[4], 1.0)]);
        assert_eq!(global.distinct.len(), 3);
        assert_eq!(global.unique_members, 5);
        assert_eq!(global.distinct[0].shard, 1);
    }

    #[test]
    fn identical_member_sets_with_different_densities_keep_the_densest_view() {
        // Three shards report the SAME member set — a fully replicated
        // view of one split community — at different local densities
        // (each shard holds a different slice of the edge weight). The
        // distinct ranking must keep exactly one entry: the densest one.
        let agg = DetectionAggregator::new(4);
        let global = agg.merge(vec![
            det_over(&[7, 8, 9], 2.5),
            det_over(&[7, 8, 9], 8.0),
            det_over(&[7, 8, 9], 4.0),
        ]);
        assert_eq!(global.distinct.len(), 1, "identical member sets must collapse to one view");
        assert_eq!(global.distinct[0].shard, 1);
        assert_eq!(global.distinct[0].detection.density, 8.0);
        // The raw ranking still shows all three for drill-down.
        assert_eq!(global.top.len(), 3);
        // Members counted once, not three times.
        assert_eq!(global.unique_members, 3);
        assert_eq!(global.best_shard, 1);
    }

    #[test]
    fn unique_members_count_once_under_three_way_overlap() {
        // A chain of three overlapping views: shard 0 and shard 2 only
        // overlap transitively through shard 1, and member 20 appears in
        // all three. unique_members must count {10,20,30,40} once each,
        // and the distinct ranking must drop BOTH chained views — each
        // overlaps the kept densest view directly via member 20.
        let agg = DetectionAggregator::new(4);
        let global = agg.merge(vec![
            det_over(&[10, 20], 3.0),
            det_over(&[20, 30], 9.0),
            det_over(&[20, 40], 5.0),
        ]);
        assert_eq!(global.unique_members, 4, "members shared three ways count once");
        let distinct_shards: Vec<usize> = global.distinct.iter().map(|s| s.shard).collect();
        assert_eq!(distinct_shards, vec![1], "both overlapping views collapse into shard 1's");
        assert_eq!(global.best_shard, 1);
        // Aggregate size bookkeeping: raw sizes sum to 6, the gap of 2 is
        // exactly the double-counted member 20.
        let raw_sum: usize = global.top.iter().map(|s| s.detection.size).sum();
        assert_eq!(raw_sum - global.unique_members, 2);
    }

    #[test]
    fn distinct_ranking_respects_top_k() {
        let agg = DetectionAggregator::new(1);
        let global = agg.merge(vec![det_over(&[0, 1], 3.0), det_over(&[2, 3], 5.0)]);
        assert_eq!(global.distinct.len(), 1);
        assert_eq!(global.top.len(), 1);
        assert_eq!(global.distinct[0].shard, 1);
    }
}
