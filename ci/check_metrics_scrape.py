#!/usr/bin/env python3
"""Validates Prometheus text expositions scraped from a live `spade serve
--metrics` exporter.

Given two scrapes taken in order (SCRAPE1 then SCRAPE2), asserts:

1. both are non-empty and every non-comment line is a well-formed
   `name{labels} value` pair (value parses as a finite float),
2. the expected core series are present (uptime, per-stage histogram
   summaries, runtime and transport counters),
3. every `*_total` / `*_count` counter present in both scrapes is
   monotone non-decreasing from the first to the second, and uptime
   strictly advances.

Usage:
    ci/check_metrics_scrape.py SCRAPE1.txt SCRAPE2.txt
    ci/check_metrics_scrape.py --self-test
"""

import math
import re
import sys

LINE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*(?:\{[^}]*\})?) (\S+)$")

EXPECTED_SERIES = [
    "spade_uptime_seconds",
    "spade_updates_total",
    "spade_stage_queue_wait_ns_count",
    "spade_stage_publish_ns_count",
    'spade_stage_queue_wait_ns{quantile="0.99"}',
    "spade_net_connections_total",
    "spade_net_edges_accepted_total",
    # SLO scheduler series: registered at worker spawn even when no
    # deadline is configured, so a scrape must always carry them.
    "spade_deadline_miss_total",
    "spade_deadline_slack_ns_count",
]


def parse(path):
    """Returns {series_name_with_labels: float_value}; exits on malformed."""
    with open(path) as f:
        text = f.read()
    if not text.strip():
        sys.exit(f"FAIL: {path} is empty — the exporter served nothing")
    series = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        m = LINE.match(line)
        if not m:
            sys.exit(f"FAIL: {path}:{lineno}: malformed exposition line: {line!r}")
        name, raw = m.groups()
        try:
            value = float(raw)
        except ValueError:
            sys.exit(f"FAIL: {path}:{lineno}: non-numeric value in: {line!r}")
        if not math.isfinite(value):
            sys.exit(f"FAIL: {path}:{lineno}: non-finite value in: {line!r}")
        if name in series:
            sys.exit(f"FAIL: {path}:{lineno}: duplicate series {name}")
        series[name] = value
    return series


def self_test():
    """Re-runs this gate against the committed fixtures: an advancing
    scrape pair must pass and a backwards counter must fail."""
    import os
    import subprocess

    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
    script = os.path.abspath(__file__)
    first = os.path.join(fixtures, "scrape_ok_1.txt")
    cases = [
        (True, [first, os.path.join(fixtures, "scrape_ok_2.txt")]),
        (False, [first, os.path.join(fixtures, "scrape_bad_2.txt")]),
    ]
    for expect_ok, argv in cases:
        proc = subprocess.run([sys.executable, script, *argv],
                              capture_output=True, text=True)
        ok = proc.returncode == 0
        if ok != expect_ok:
            print(proc.stdout)
            print(proc.stderr, file=sys.stderr)
            sys.exit(f"FAIL: self-test case {argv} expected "
                     f"{'pass' if expect_ok else 'fail'} but got rc "
                     f"{proc.returncode}")
    print("OK: self-test — advancing scrapes pass, backwards counter fails")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    first = parse(sys.argv[1])
    second = parse(sys.argv[2])

    missing = [s for s in EXPECTED_SERIES if s not in first or s not in second]
    if missing:
        sys.exit(f"FAIL: expected series missing from the scrapes: {missing}")

    regressions = []
    for name, before in first.items():
        base = name.split("{", 1)[0]
        if not (base.endswith("_total") or base.endswith("_count")):
            continue
        after = second.get(name)
        # A per-connection labeled series may age out of the tracking
        # window between scrapes; only present-in-both pairs gate.
        if after is not None and after < before:
            regressions.append(f"{name}: {before} -> {after}")
    if regressions:
        sys.exit("FAIL: counters moved backwards between scrapes:\n  "
                 + "\n  ".join(regressions))

    if second["spade_uptime_seconds"] <= first["spade_uptime_seconds"]:
        sys.exit("FAIL: uptime did not advance between scrapes")

    counters = sum(1 for n in first if n.split("{", 1)[0].endswith(("_total", "_count")))
    print(f"OK: {len(first)} series well-formed, {counters} counters monotone, "
          f"uptime advanced {first['spade_uptime_seconds']:.3f}s -> "
          f"{second['spade_uptime_seconds']:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
