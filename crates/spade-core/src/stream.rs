//! Update-stream types (paper §4.3): timestamped transactions `ΔG_τ`,
//! optionally labeled with the fraud pattern that generated them.
//!
//! The latency metric `L(ΔG_τ)` (Eq. 4) and the prevention ratio `R`
//! (Fig. 8) are defined over `(generation timestamp, response timestamp)`
//! pairs of labeled fraudulent transactions; the workload generators in
//! `spade-gen` produce these records and the measurement code in
//! `spade-metrics` consumes the pairs.

use spade_graph::VertexId;

/// The fraud patterns of the paper's case studies (Fig. 12/13).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FraudPattern {
    /// Customer–merchant collusion: fake accounts trading with a merchant
    /// to farm promotions (Fig. 12a).
    CustomerMerchantCollusion,
    /// Deal-hunter: a group of users exploiting promotions or merchant
    /// bugs (Fig. 12b).
    DealHunter,
    /// Click-farming: merchants recruiting fraudsters to fake prosperity
    /// (Fig. 12c).
    ClickFarming,
}

impl FraudPattern {
    /// All three patterns, in paper order.
    pub const ALL: [FraudPattern; 3] = [
        FraudPattern::CustomerMerchantCollusion,
        FraudPattern::DealHunter,
        FraudPattern::ClickFarming,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FraudPattern::CustomerMerchantCollusion => "customer-merchant collusion",
            FraudPattern::DealHunter => "deal-hunter",
            FraudPattern::ClickFarming => "click-farming",
        }
    }
}

/// Ground-truth label carried by transactions injected by a fraud
/// generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FraudLabel {
    /// Which injected fraud instance the transaction belongs to.
    pub instance: u32,
    /// The pattern of that instance.
    pub pattern: FraudPattern,
}

/// One timestamped transaction of an update stream.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StreamEdge {
    /// Paying side.
    pub src: VertexId,
    /// Receiving side.
    pub dst: VertexId,
    /// Raw transaction attribute handed to `ESusp` (e.g. amount).
    pub raw: f64,
    /// Generation time, in stream time units (microseconds).
    pub timestamp: u64,
    /// Ground-truth fraud label, if this transaction was injected.
    pub label: Option<FraudLabel>,
}

impl StreamEdge {
    /// An unlabeled (organic) transaction.
    pub fn organic(src: VertexId, dst: VertexId, raw: f64, timestamp: u64) -> Self {
        StreamEdge { src, dst, raw, timestamp, label: None }
    }

    /// A labeled fraudulent transaction.
    pub fn fraudulent(
        src: VertexId,
        dst: VertexId,
        raw: f64,
        timestamp: u64,
        label: FraudLabel,
    ) -> Self {
        StreamEdge { src, dst, raw, timestamp, label: Some(label) }
    }

    /// `true` when the transaction carries a fraud label.
    pub fn is_fraud(&self) -> bool {
        self.label.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            FraudPattern::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn constructors_set_labels() {
        let e = StreamEdge::organic(VertexId(1), VertexId(2), 3.0, 7);
        assert!(!e.is_fraud());
        let f = StreamEdge::fraudulent(
            VertexId(1),
            VertexId(2),
            3.0,
            7,
            FraudLabel { instance: 4, pattern: FraudPattern::DealHunter },
        );
        assert!(f.is_fraud());
        assert_eq!(f.label.unwrap().instance, 4);
    }
}
