//! The paper's Listing 2, translated: implementing Fraudar (FD) on Spade
//! with two plugged-in suspiciousness functions — about 15 lines of user
//! code versus ~100 for a standalone implementation.
//!
//! Run with: `cargo run --release --example custom_metric`

use spade::core::SpadeBuilder;
use spade::graph::VertexId;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn main() {
    // Listing 2:
    //   double vsusp(Vertex v, Graph g) { return g.weight[v]; }
    //   double esusp(Edge e, Graph g)   { return 1/log(g.deg[e.src]+5); }
    //   spade.VSusp(vsusp); spade.ESusp(esusp);
    //   spade.TurnOnEdgeGrouping();
    let mut spade = SpadeBuilder::new()
        .name("FD")
        .vsusp(|_u, _g| 0.0) // no side information in this demo
        .esusp(|_src, dst, _raw, g| 1.0 / (g.degree(dst) as f64 + 5.0).ln())
        .turn_on_edge_grouping()
        .build();

    // Normal users review a handful of products each.
    for u in 0..30u32 {
        for p in 0..4u32 {
            spade.insert_edge(v(u), v(1000 + (u + p) % 40), 1.0).expect("valid edge");
        }
    }

    // A review-fraud block: 12 sockpuppets hammer 3 listings. Fraudar's
    // logarithmic column weights resist the camouflage of extra organic
    // reviews on popular products.
    for u in 500..512u32 {
        for p in [2000u32, 2001, 2002] {
            for _ in 0..3 {
                spade.insert_edge(v(u), v(p), 1.0).expect("valid edge");
            }
        }
    }

    let fraudsters = spade.detect().expect("detection");
    let mut ids: Vec<u32> = fraudsters.iter().map(|u| u.0).collect();
    ids.sort_unstable();
    println!("FD flags {} accounts: {ids:?}", ids.len());
    assert!(ids.contains(&2000) && ids.contains(&500));

    let det = spade.detection().expect("detection");
    println!("community density g(S) = {:.4}", det.density);
    if let Some(grouper) = spade.grouper() {
        let s = grouper.stats();
        println!(
            "edge grouping: {} submitted, {} urgent, {} flushes",
            s.submitted, s.urgent, s.flushes
        );
    }
}
