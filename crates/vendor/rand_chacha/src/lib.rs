//! Offline stand-in for `rand_chacha`.
//!
//! Exposes a [`ChaCha8Rng`] type with the same construction API
//! (`SeedableRng::seed_from_u64`) the workspace uses. The underlying
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! high-quality, and fast, but **not** the real ChaCha8 stream. All
//! workspace consumers treat seeded randomness as an opaque deterministic
//! source, so only per-seed reproducibility matters.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator (xoshiro256++ core).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        ChaCha8Rng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniformish_f64() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
