//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the snapshot codec (`spade_core::persist`) uses:
//! [`BytesMut`] with little-endian `put_*` appends and `freeze`, [`Bytes`]
//! as an immutable byte cursor with `remaining` and little-endian `get_*`
//! reads, and the [`Buf`]/[`BufMut`] traits those methods live on. Backed
//! by a plain `Vec<u8>` — no shared-region refcounting, which the snapshot
//! path never needs.

/// Read side: a cursor over bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes, returning them as a slice.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Reads a little-endian `f64`, advancing the cursor.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable bytes with a read cursor for decoding.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underrun");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    /// The unconsumed tail of the buffer.
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(-1234.5678);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 20);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -1234.5678);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_exposes_unconsumed_bytes() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&b[..2], &[1, 2]);
        let _ = b.get_u32_le();
        assert_eq!(&b[..], &[5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![0u8; 3]);
        let _ = b.get_u32_le();
    }
}
