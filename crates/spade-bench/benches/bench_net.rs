//! Criterion: the network ingest front end.
//!
//! Two layers are measured separately:
//!
//! * `wire_codec` — pure encode/decode cost of a 512-edge `Batch` frame
//!   (the transport's per-edge CPU tax with no socket involved);
//! * `net_replay` — a full loopback replay of the benchmark workload
//!   through `SpadeNetServer`/`SpadeNetClient` (fresh server per
//!   iteration, drained on shutdown), directly comparable to the
//!   in-process `sharded_ingest` numbers from `bench_sharded` — the gap
//!   between the two is the price of the socket + framing.
//!
//! Like `bench_sharded`, scaling requires cores; on a single-core host
//! the replay measures transport overhead under time-slicing.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spade_core::metric::WeightedDensity;
use spade_core::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use spade_core::stream::StreamEdge;
use spade_gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade_graph::VertexId;
use spade_net::{ClientConfig, FrameDecoder, SpadeNetClient, SpadeNetServer, WireFrame};
use std::sync::Arc;

/// The same benign-heavy workload shape as `bench_sharded`.
fn workload() -> Vec<StreamEdge> {
    let scale = spade_bench::env_scale() / 0.01;
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: ((1_500.0 * scale) as usize).max(100),
        merchants: ((500.0 * scale) as usize).max(30),
        transactions: ((6_000.0 * scale) as usize).max(500),
        seed: 0x5AD5,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: ((150.0 * scale) as usize).max(40),
            amount: 300.0,
            ..Default::default()
        },
    );
    injected.edges
}

fn bench_wire_codec(c: &mut Criterion) {
    let edges: Vec<(VertexId, VertexId, f64)> =
        (0..512u32).map(|i| (VertexId(i), VertexId(i + 1), 1.5 + (i % 7) as f64)).collect();
    let frame = WireFrame::Batch { edges };
    let encoded = frame.encode();
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Elements(512));
    group.bench_function("encode_batch_512", |b| {
        b.iter(|| frame.encode().len());
    });
    group.bench_function("decode_batch_512", |b| {
        b.iter(|| {
            let mut decoder = FrameDecoder::new();
            decoder.extend(&encoded);
            decoder.next_frame().expect("valid frame").is_some()
        });
    });
    group.finish();
}

/// One full loopback replay: spawn runtime + server, feed every edge
/// through a TCP client, drain on shutdown. Returns total updates.
fn net_replay(edges: &[StreamEdge], shards: usize, batch: usize) -> u64 {
    let service = Arc::new(ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards,
            queue_capacity: 4096,
            strategy: PartitionStrategy::HashBySource,
            top_k: shards,
            ..Default::default()
        },
    ));
    let server = SpadeNetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = SpadeNetClient::connect_with(
        server.local_addr(),
        ClientConfig { batch, pipeline: 16, ..Default::default() },
    )
    .expect("connect");
    for e in edges {
        client.submit(e.src, e.dst, e.raw).expect("submit");
    }
    client.finish().expect("flush");
    server.shutdown();
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    service.shutdown().total_updates
}

fn bench_net_replay(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("net_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));
    for batch in [1usize, 64, 512] {
        group.bench_function(BenchmarkId::new("loopback_batch", batch), |b| {
            b.iter(|| {
                let n = net_replay(&edges, 2, batch);
                assert_eq!(n, edges.len() as u64);
                n
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire_codec, bench_net_replay);
criterion_main!(benches);
