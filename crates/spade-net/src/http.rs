//! A minimal HTTP/1.0 metrics exporter for Prometheus-style scrapers.
//!
//! [`MetricsHttpServer`] binds a loopback (or any) address and answers
//! every request with the text exposition produced by a caller-supplied
//! render closure — typically
//! `ShardedSpadeService::metrics().merge(&server.metrics()).render_prometheus()`,
//! the same rendering a wire-level `Metrics` request returns. The
//! responder is deliberately tiny: it ignores the request line and
//! headers (every path scrapes), speaks `Connection: close`, and serves
//! one request per connection — exactly what a scrape loop needs and
//! nothing more, with no HTTP dependency.
//!
//! Requests are handled sequentially on the accept thread; a stalled
//! scraper is bounded by a short read timeout, so it can delay the next
//! scrape but never wedge the exporter.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on one readiness wait for the next scrape — a pending
/// connection wakes the `poll(2)` immediately, so this only bounds how
/// long a stop request can go unnoticed (the old sleep-polling accept
/// loop is retired in favor of the reactor's readiness primitive).
const ACCEPT_WAIT: Duration = Duration::from_millis(50);
/// Upper bound on waiting for a scraper to send its request line.
const REQUEST_TIMEOUT: Duration = Duration::from_millis(500);

/// Produces the exposition body served to every scrape.
pub type RenderFn = dyn Fn() -> String + Send + Sync;

/// A running metrics exporter. Dropping the handle stops the listener
/// and joins the accept thread.
pub struct MetricsHttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl MetricsHttpServer {
    /// Binds `addr` (port 0 for an OS-assigned port) and serves
    /// `render()` as `text/plain` to every request.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        render: Arc<RenderFn>,
    ) -> std::io::Result<MetricsHttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("spade-metrics-http".into())
                .spawn(move || accept_loop(listener, render, stop))
                .expect("failed to spawn the metrics exporter thread")
        };
        Ok(MetricsHttpServer { local_addr, stop, accept: Some(accept) })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Asks the exporter to wind down without blocking.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Stops the exporter and joins its thread.
    pub fn shutdown(mut self) {
        self.join();
    }

    fn join(&mut self) {
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for MetricsHttpServer {
    fn drop(&mut self) {
        self.join();
    }
}

fn accept_loop(listener: TcpListener, render: Arc<RenderFn>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // Read whatever request the scraper sent (the content is
                // irrelevant — every path serves the exposition), then
                // answer and close. Errors only drop this one scrape.
                stream.set_read_timeout(Some(REQUEST_TIMEOUT)).ok();
                let mut req = [0u8; 4096];
                let _ = stream.read(&mut req);
                let body = render();
                let head = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(body.as_bytes());
                let _ = stream.flush();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Park in poll(2) until a scrape arrives (or the wait
                // bound elapses and the stop flag is re-checked).
                let _ = crate::reactor::wait_readable(listener.as_raw_fd(), ACCEPT_WAIT);
            }
            Err(_) => std::thread::sleep(ACCEPT_WAIT),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn every_request_serves_the_rendered_exposition() {
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let render: Arc<RenderFn> = {
            let hits = Arc::clone(&hits);
            Arc::new(move || {
                let n = hits.fetch_add(1, Ordering::Relaxed) + 1;
                format!("# TYPE scrape_count counter\nscrape_count {n}\n")
            })
        };
        let server = MetricsHttpServer::bind("127.0.0.1:0", render).expect("bind");
        let addr = server.local_addr();

        let first = scrape(addr);
        assert!(first.starts_with("HTTP/1.0 200 OK\r\n"), "got: {first}");
        assert!(first.contains("Content-Type: text/plain"));
        assert!(first.contains("scrape_count 1\n"));

        // A second scrape re-renders: the counter is live, not cached.
        let second = scrape(addr);
        assert!(second.contains("scrape_count 2\n"));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        server.shutdown();
    }
}
