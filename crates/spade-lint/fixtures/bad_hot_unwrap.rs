// Self-test fixture: panic machinery in a hot-path module (this file is
// scanned under the service.rs hot-path identity). Never compiled.

pub fn drain(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap()
}

pub fn decode(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}
