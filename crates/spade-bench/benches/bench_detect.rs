//! Criterion: detection-index maintenance — the kinetic tournament vs the
//! O(n) rescan vs lazy detection, under streaming insertions (the
//! DESIGN.md §4.3 ablation).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_bench::replay::MetricKind;
use spade_bench::table3_datasets;
use spade_core::{DetectionBackend, SpadeConfig, SpadeEngine};

fn bench_detection_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_backend");
    let data = table3_datasets().into_iter().find(|d| d.name == "Grab1").unwrap();
    for (label, backend) in [
        ("kinetic", DetectionBackend::Kinetic),
        ("eager_scan", DetectionBackend::EagerScan),
        ("lazy", DetectionBackend::Lazy),
    ] {
        group.bench_function(BenchmarkId::new("insert+detect", label), |b| {
            let mut engine = SpadeEngine::bootstrap(
                MetricKind::Fd.metric(),
                SpadeConfig { detection: backend },
                data.initial.iter().map(|e| (e.src, e.dst, e.raw)),
            )
            .unwrap();
            let mut cursor = 0usize;
            b.iter(|| {
                if cursor >= data.increments.len() {
                    cursor = 0;
                }
                let e = &data.increments[cursor];
                cursor += 1;
                let det = engine.insert_edge(e.src, e.dst, e.raw).unwrap();
                std::hint::black_box(det);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection_backends);
criterion_main!(benches);
