//! The paper-faithful `Spade` facade (Listing 1/Listing 2).
//!
//! Developers plug in two suspiciousness closures (`VSusp`, `ESusp`),
//! optionally enable edge grouping, load an initial graph, and then stream
//! transactions through `InsertEdge` / `InsertBatchEdges`. Everything else
//! — incrementalization, reordering, batching, detection maintenance — is
//! automatic, exactly the paper's "auto-incrementalization" pitch. The
//! Listing 2 FD implementation is reproduced almost verbatim in
//! `examples/custom_metric.rs`.
//!
//! For performance-critical embedding prefer [`crate::SpadeEngine`]
//! directly: it is generic over the metric (static dispatch) and returns
//! borrowed community slices instead of owned vectors.

use crate::engine::{SpadeConfig, SpadeEngine};
use crate::grouping::{EdgeGrouper, GroupingConfig};
use crate::metric::CustomMetric;
use crate::service::{IngestConfig, SpadeService};
use crate::state::Detection;
use spade_graph::io;
use spade_graph::{DynamicGraph, GraphError, VertexId};
use std::path::Path;

/// Builder mirroring the setup phase of Listing 2 (`VSusp`, `ESusp`,
/// `TurnOnEdgeGrouping`, `LoadGraph`).
pub struct SpadeBuilder {
    vsusp: crate::metric::VertexSuspFn,
    esusp: crate::metric::EdgeSuspFn,
    name: &'static str,
    grouping: Option<GroupingConfig>,
    config: SpadeConfig,
}

impl Default for SpadeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpadeBuilder {
    /// Starts a builder with DG semantics (`vsusp = 0`, `esusp = 1` for
    /// new pairs, redundant for repeats — the paper's set-union update
    /// model).
    pub fn new() -> Self {
        SpadeBuilder {
            vsusp: Box::new(|_, _| 0.0),
            esusp: Box::new(|s, d, _, g| {
                if g.contains_vertex(s) && g.contains_vertex(d) && g.contains_edge(s, d) {
                    0.0
                } else {
                    1.0
                }
            }),
            name: "custom",
            grouping: None,
            config: SpadeConfig::default(),
        }
    }

    /// Plugs in the vertex suspiciousness function (`VSusp`).
    pub fn vsusp(
        mut self,
        f: impl Fn(VertexId, &DynamicGraph) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.vsusp = Box::new(f);
        self
    }

    /// Plugs in the edge suspiciousness function (`ESusp`). Receives
    /// `(src, dst, raw_attribute, current_graph)`.
    pub fn esusp(
        mut self,
        f: impl Fn(VertexId, VertexId, f64, &DynamicGraph) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.esusp = Box::new(f);
        self
    }

    /// Names the semantics (shows up in reports).
    pub fn name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Enables edge grouping with default settings
    /// (`TurnOnEdgeGrouping`).
    pub fn turn_on_edge_grouping(self) -> Self {
        self.edge_grouping(GroupingConfig::default())
    }

    /// Enables edge grouping with explicit settings.
    pub fn edge_grouping(mut self, config: GroupingConfig) -> Self {
        self.grouping = Some(config);
        self
    }

    /// Overrides the engine configuration (detection backend).
    pub fn engine_config(mut self, config: SpadeConfig) -> Self {
        self.config = config;
        self
    }

    fn into_metric(self) -> (CustomMetric, Option<GroupingConfig>, SpadeConfig) {
        let vsusp = self.vsusp;
        let esusp = self.esusp;
        let metric = CustomMetric::new(
            self.name,
            move |u, g| vsusp(u, g),
            move |s, d, raw, g| esusp(s, d, raw, g),
        );
        (metric, self.grouping, self.config)
    }

    /// Builds an empty `Spade` instance (graph arrives via insertions).
    pub fn build(self) -> Spade {
        let (metric, grouping, config) = self.into_metric();
        Spade {
            engine: SpadeEngine::with_config(metric, config),
            grouper: grouping.map(EdgeGrouper::new),
        }
    }

    /// `LoadGraph`: reads a whitespace edge list (`src dst [raw] [ts]`)
    /// from disk, evaluates the plugged-in suspiciousness functions while
    /// replaying it, and runs one static peel.
    pub fn load_graph<P: AsRef<Path>>(self, path: P) -> Result<Spade, GraphError> {
        let (records, _interner) = io::read_edge_list(std::fs::File::open(path)?)?;
        self.load_records(records.iter().map(|r| (r.src, r.dst, r.weight)))
    }

    /// `LoadGraph` from an in-memory transaction iterator.
    pub fn load_records(
        self,
        records: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Result<Spade, GraphError> {
        let (metric, grouping, config) = self.into_metric();
        let engine = SpadeEngine::bootstrap(metric, config, records)?;
        Ok(Spade { engine, grouper: grouping.map(EdgeGrouper::new) })
    }
}

/// The Listing 1 interface: `Detect`, `InsertEdge`, `InsertBatchEdges`.
pub struct Spade {
    engine: SpadeEngine<CustomMetric>,
    grouper: Option<EdgeGrouper>,
}

impl Spade {
    /// Detects the current fraudulent community, flushing any buffered
    /// benign edges first so the answer reflects every submitted
    /// transaction.
    pub fn detect(&mut self) -> Result<Vec<VertexId>, GraphError> {
        if let Some(grouper) = self.grouper.as_mut() {
            grouper.flush(&mut self.engine)?;
        }
        let det = self.engine.detect();
        Ok(self.engine.community(det).to_vec())
    }

    /// Inserts one transaction and returns the fraudulent community. With
    /// edge grouping enabled, benign transactions are buffered and the
    /// *previous* community is returned until a flush happens (that delay
    /// is exactly the queueing time of Fig. 8).
    pub fn insert_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        raw: f64,
    ) -> Result<Vec<VertexId>, GraphError> {
        let det = match self.grouper.as_mut() {
            Some(grouper) => {
                let outcome = grouper.submit(&mut self.engine, src, dst, raw)?;
                match outcome.flushed {
                    Some((_, det)) => det,
                    None => self.engine.cached_detection(),
                }
            }
            None => self.engine.insert_edge(src, dst, raw)?,
        };
        Ok(self.engine.community(det).to_vec())
    }

    /// Inserts a batch of transactions with one reordering pass and
    /// returns the fraudulent community.
    pub fn insert_batch_edges(
        &mut self,
        edges: &[(VertexId, VertexId, f64)],
    ) -> Result<Vec<VertexId>, GraphError> {
        if let Some(grouper) = self.grouper.as_mut() {
            grouper.flush(&mut self.engine)?;
        }
        let det = self.engine.insert_batch(edges)?;
        Ok(self.engine.community(det).to_vec())
    }

    /// Deletes an outdated edge (Appendix C.1 extension).
    pub fn delete_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
    ) -> Result<Vec<VertexId>, GraphError> {
        if let Some(grouper) = self.grouper.as_mut() {
            grouper.flush(&mut self.engine)?;
        }
        let det = self.engine.delete_edge(src, dst)?;
        Ok(self.engine.community(det).to_vec())
    }

    /// The current detection descriptor (size + density) without copying
    /// the member list.
    pub fn detection(&mut self) -> Result<Detection, GraphError> {
        if let Some(grouper) = self.grouper.as_mut() {
            grouper.flush(&mut self.engine)?;
        }
        Ok(self.engine.detect())
    }

    /// Hands the facade's engine to a threaded [`SpadeService`] — the
    /// Fig. 1 runtime with drain-coalescing ingest and zero-copy
    /// snapshot publishing. Any buffered benign edges are flushed first,
    /// so the service starts from the exact state every transaction
    /// submitted so far implies; the grouping configuration carries
    /// over to the worker.
    pub fn into_service(mut self, ingest: IngestConfig) -> Result<SpadeService, GraphError> {
        let mut grouping = None;
        if let Some(g) = self.grouper.as_mut() {
            grouping = Some(g.config());
            g.flush(&mut self.engine)?;
        }
        Ok(SpadeService::spawn_with(self.engine, grouping, ingest, "spade-detector".into()))
    }

    /// Read access to the underlying engine.
    pub fn engine(&self) -> &SpadeEngine<CustomMetric> {
        &self.engine
    }

    /// Mutable access to the underlying engine (escape hatch).
    pub fn engine_mut(&mut self) -> &mut SpadeEngine<CustomMetric> {
        &mut self.engine
    }

    /// The grouping buffer, when enabled.
    pub fn grouper(&self) -> Option<&EdgeGrouper> {
        self.grouper.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Listing 2, translated: FD on Spade in ~10 lines.
    fn fraudar_spade() -> Spade {
        SpadeBuilder::new()
            .name("FD")
            .vsusp(|_u, _g| 0.0)
            .esusp(|_s, d, _raw, g| 1.0 / (g.degree(d) as f64 + 5.0).ln())
            .build()
    }

    #[test]
    fn listing2_fraudar_detects_dense_block() {
        let mut spade = fraudar_spade();
        // Background bipartite traffic.
        for u in 0..6u32 {
            for m in [20u32, 21] {
                spade.insert_edge(v(u), v(m), 1.0).unwrap();
            }
        }
        // A click-farming block: many fake users hammering one merchant
        // cluster.
        for u in 10..16u32 {
            for m in [30u32, 31, 32] {
                spade.insert_edge(v(u), v(m), 1.0).unwrap();
                spade.insert_edge(v(u), v(m), 1.0).unwrap();
            }
        }
        let fraudsters = spade.detect().unwrap();
        assert!(!fraudsters.is_empty());
        let ids: std::collections::HashSet<u32> = fraudsters.iter().map(|u| u.0).collect();
        // The dense block's merchants must be implicated.
        assert!(ids.contains(&30) && ids.contains(&31) && ids.contains(&32));
    }

    #[test]
    fn default_builder_is_dg() {
        let mut spade = SpadeBuilder::new().build();
        spade.insert_edge(v(0), v(1), 123.0).unwrap();
        // DG semantics: weight 1 regardless of raw attribute.
        assert_eq!(spade.engine().graph().edge_weight(v(0), v(1)), Some(1.0));
    }

    #[test]
    fn load_records_bootstraps_then_streams() {
        let records = vec![(v(0), v(1), 2.0), (v(1), v(2), 2.0), (v(2), v(0), 2.0)];
        let mut spade =
            SpadeBuilder::new().name("DW").esusp(|_, _, raw, _| raw).load_records(records).unwrap();
        let before = spade.detection().unwrap();
        spade.insert_edge(v(3), v(0), 50.0).unwrap();
        let after = spade.detection().unwrap();
        assert!(after.density > before.density);
    }

    #[test]
    fn load_graph_from_disk() {
        let dir = std::env::temp_dir().join("spade_facade_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        std::fs::write(&path, "a b 3.0\nb c 2.0\nc a 4.0\n").unwrap();
        let mut spade = SpadeBuilder::new().esusp(|_, _, raw, _| raw).load_graph(&path).unwrap();
        let det = spade.detection().unwrap();
        assert_eq!(det.size, 3);
        assert!((det.density - 3.0).abs() < 1e-9);
    }

    #[test]
    fn grouping_path_buffers_and_detect_flushes() {
        let mut spade = SpadeBuilder::new()
            .name("DW")
            .esusp(|_, _, raw, _| raw)
            .turn_on_edge_grouping()
            .build();
        // Establish a dense community first (urgent edges flush eagerly
        // while the threshold is still low).
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    spade.insert_edge(v(a), v(b), 10.0).unwrap();
                }
            }
        }
        let threshold = spade.detection().unwrap().density;
        assert!(threshold > 0.0);
        // Benign background edge: buffered, graph unchanged.
        spade.insert_edge(v(7), v(8), 0.01).unwrap();
        assert_eq!(spade.grouper().unwrap().buffered(), 1);
        assert!(spade.engine().graph().edge_weight(v(7), v(8)).is_none());
        // Detect flushes the buffer.
        spade.detect().unwrap();
        assert_eq!(spade.grouper().unwrap().buffered(), 0);
        assert!(spade.engine().graph().edge_weight(v(7), v(8)).is_some());
    }

    #[test]
    fn facade_into_service_flushes_and_serves() {
        let spade = SpadeBuilder::new()
            .name("DW")
            .esusp(|_, _, raw, _| raw)
            .turn_on_edge_grouping()
            .build();
        let service = spade.into_service(IngestConfig::default()).unwrap();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    assert!(service.submit(v(a), v(b), 15.0));
                }
            }
        }
        let det = service.shutdown();
        assert_eq!(det.updates_applied, 6);
        assert!(det.size >= 3);
    }

    #[test]
    fn facade_delete_edge_roundtrip() {
        let mut spade = SpadeBuilder::new().esusp(|_, _, raw, _| raw).build();
        spade.insert_edge(v(0), v(1), 5.0).unwrap();
        spade.insert_edge(v(1), v(2), 5.0).unwrap();
        spade.delete_edge(v(0), v(1)).unwrap();
        assert_eq!(spade.engine().graph().num_edges(), 1);
    }
}
