//! `spade-lint` CLI.
//!
//! ```text
//! cargo run -p spade-lint -- --workspace [--root DIR] [--allowlist FILE]
//! cargo run -p spade-lint -- --self-test
//! ```
//!
//! `--workspace` scans the repository and exits non-zero on any
//! violation: an unannotated `Ordering::Relaxed` or `unsafe`, an
//! annotation or hot-path/wire finding not registered in the allowlist
//! (`spade-lint.allow` at the workspace root by default), or a stale
//! allowlist entry that no longer matches any site.
//!
//! `--self-test` proves the detector still detects: it runs the rules
//! over committed bad fixtures (unannotated relaxed, hot-path unwrap,
//! unchecked wire-length arithmetic, bare unsafe, clock-in-loop) and a
//! good fixture, failing if any expected finding goes missing —
//! mirroring the `--self-test` pattern of the `ci/` gate scripts.

use spade_lint::{evaluate, scan_file, scan_workspace, Allowlist, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut self_test = false;
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--self-test" => self_test = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--allowlist" => match it.next() {
                Some(file) => allowlist_path = Some(PathBuf::from(file)),
                None => return usage("--allowlist requires a file"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    match (workspace, self_test) {
        (true, false) => run_workspace(root, allowlist_path),
        (false, true) => run_self_test(),
        _ => usage("pass exactly one of --workspace or --self-test"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("spade-lint: {err}");
    eprintln!("usage: spade-lint --workspace [--root DIR] [--allowlist FILE]");
    eprintln!("       spade-lint --self-test");
    ExitCode::from(2)
}

fn run_workspace(root: PathBuf, allowlist_path: Option<PathBuf>) -> ExitCode {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        eprintln!(
            "spade-lint: {} does not look like the workspace root (pass --root)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("spade-lint.allow"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("spade-lint: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("spade-lint: cannot read {}: {e}", allowlist_path.display());
            return ExitCode::from(2);
        }
    };

    let findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spade-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let eval = evaluate(&findings, &allowlist);

    for v in &eval.violations {
        println!("{v}");
        if v.allowable {
            println!("    register it: {}\t{}\t{}", v.rule.name(), v.path, v.key);
        }
    }
    for (rule, path, key) in &eval.stale {
        println!("{path}: [{0}] stale allowlist entry (no matching site): {key:?}", rule.name());
    }

    let audited: usize = eval.audited.iter().map(|(_, n)| n).sum();
    let per_rule: Vec<String> =
        eval.audited.iter().map(|(r, n)| format!("{} {}", n, r.name())).collect();
    println!(
        "spade-lint: {} audited sites ({}), {} allowlist entries, {} violations, {} stale",
        audited,
        per_rule.join(", "),
        allowlist.len(),
        eval.violations.len(),
        eval.stale.len()
    );
    if eval.violations.is_empty() && eval.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One self-test case: a fixture scanned under an assumed identity must
/// produce at least one finding of `rule`; `unallowable` additionally
/// requires a finding no allowlist could bless.
struct Case {
    name: &'static str,
    scan_as: &'static str,
    source: &'static str,
    rule: Rule,
    unallowable: bool,
}

fn run_self_test() -> ExitCode {
    let cases = [
        Case {
            name: "bad_relaxed",
            scan_as: "crates/spade-core/src/service.rs",
            source: include_str!("../fixtures/bad_relaxed.rs"),
            rule: Rule::Relaxed,
            unallowable: true,
        },
        Case {
            name: "bad_hot_unwrap",
            scan_as: "crates/spade-core/src/service.rs",
            source: include_str!("../fixtures/bad_hot_unwrap.rs"),
            rule: Rule::HotPanic,
            unallowable: false,
        },
        Case {
            name: "bad_wire_len",
            scan_as: "crates/spade-net/src/wire.rs",
            source: include_str!("../fixtures/bad_wire_len.rs"),
            rule: Rule::WireArith,
            unallowable: false,
        },
        Case {
            name: "bad_unsafe",
            scan_as: "crates/spade-core/src/service.rs",
            source: include_str!("../fixtures/bad_unsafe.rs"),
            rule: Rule::Unsafe,
            unallowable: true,
        },
        Case {
            name: "bad_instant_loop",
            scan_as: "crates/spade-net/src/reactor.rs",
            source: include_str!("../fixtures/bad_instant_loop.rs"),
            rule: Rule::InstantLoop,
            unallowable: false,
        },
    ];

    let mut failed = false;
    for case in &cases {
        let findings = scan_file(case.scan_as, case.source);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == case.rule).collect();
        let ok = !hits.is_empty() && (!case.unallowable || hits.iter().any(|f| !f.allowable));
        println!(
            "self-test {}: {} ({} {} findings)",
            case.name,
            if ok { "PASS" } else { "FAIL" },
            hits.len(),
            case.rule.name()
        );
        failed |= !ok;
    }

    // The good fixture: every site is annotated, nothing unallowable,
    // and no hot-path/wire finding at all.
    let good = include_str!("../fixtures/good.rs");
    for scan_as in ["crates/spade-core/src/service.rs", "crates/spade-net/src/wire.rs"] {
        let findings = scan_file(scan_as, good);
        let bad: Vec<_> = findings
            .iter()
            .filter(|f| {
                !f.allowable
                    || matches!(f.rule, Rule::HotPanic | Rule::InstantLoop | Rule::WireArith)
            })
            .collect();
        let ok = bad.is_empty();
        println!("self-test good fixture as {scan_as}: {}", if ok { "PASS" } else { "FAIL" });
        for f in bad {
            println!("    unexpected: {f}");
            failed = true;
        }
    }

    if failed {
        println!("self-test: FAIL — a rule stopped detecting its fixture");
        ExitCode::FAILURE
    } else {
        println!("self-test: PASS — every rule still fires on its fixture");
        ExitCode::SUCCESS
    }
}
