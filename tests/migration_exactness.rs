//! The connectivity-merge half of the `cross-shard-exactness` CI gate.
//!
//! Connectivity routing keeps a component's edges co-resident — until
//! two already-homed components merge. The losing side's earlier edges
//! are then stranded on its old shard and the merge-assembled community
//! is split and diluted, exactly like hash routing. This gate builds
//! such merged communities deterministically, verifies the dilution
//! premise, runs one migration pass ([`ShardedSpadeService::rebalance`])
//! and requires the **exact** solo-engine answer — same members, same
//! density — for N ∈ {2, 4, 8} shards, plus a property test over
//! arbitrary bridged component pairs.
//!
//! Kept as its own integration test (and part of a named CI job) so a
//! regression here reads as "migration lost exactness", not as a
//! generic test failure.

use proptest::prelude::*;
use spade::core::shard::migrate::MigrationTrigger;
use spade::core::{SpadeEngine, WeightedDensity};
use spade::graph::VertexId;
use spade::shard::{MigrationPolicy, ShardedConfig, ShardedSpadeService};
use std::time::{Duration, Instant};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// The seeded stranded-merge workload: background noise paths spread
/// across shards, two dense half-rings born as separate components, a
/// bridge that merges them, and post-merge cross traffic. Every run
/// replays the identical stream.
fn stranded_merge_stream() -> Vec<(VertexId, VertexId, f64)> {
    let mut edges = Vec::new();
    // Noise: disjoint low-weight paths, one component each, so the
    // least-loaded pinning rotates across every shard before the fraud
    // components are born.
    for p in 0..12u32 {
        let base = 1_000 + p * 10;
        for i in 0..4 {
            edges.push((v(base + i), v(base + i + 1), 1.0));
        }
    }
    let ring_a: Vec<u32> = (100..105).collect();
    let ring_b: Vec<u32> = (200..205).collect();
    // Component A, then component B: born separately, homed separately.
    for ring in [&ring_a, &ring_b] {
        for &a in ring.iter() {
            for &b in ring.iter() {
                if a != b {
                    edges.push((v(a), v(b), 600.0));
                }
            }
        }
    }
    // The bridge merges the two homed components: from here on, B's
    // earlier edges are stranded on its (losing) home shard.
    edges.push((v(100), v(200), 600.0));
    // Post-merge cross traffic lands on the surviving home.
    for (&a, &b) in ring_a.iter().zip(ring_b.iter()) {
        edges.push((v(a), v(b), 600.0));
        edges.push((v(b), v(a), 600.0));
    }
    edges
}

/// Solo-engine ground truth over the same stream.
fn solo_detection(edges: &[(VertexId, VertexId, f64)]) -> (usize, f64, Vec<u32>) {
    let mut solo = SpadeEngine::new(WeightedDensity);
    for &(a, b, w) in edges {
        let _ = solo.insert_edge(a, b, w);
    }
    let det = solo.detect();
    let mut members: Vec<u32> = solo.community(det).iter().map(|m| m.0).collect();
    members.sort_unstable();
    (det.size, det.density, members)
}

/// Polls until every submitted command has been applied (the submit path
/// is synchronous only up to the bounded queues).
fn drain(service: &ShardedSpadeService, submitted: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().iter().map(|s| s.service.updates_applied).sum::<u64>() < submitted {
        assert!(Instant::now() < deadline, "drain timed out");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn assert_exact_after_migration(shards: usize) {
    let edges = stranded_merge_stream();
    let (want_size, want_density, want_members) = solo_detection(&edges);
    assert!(want_size > 0, "the workload must contain a detectable community");

    let service = ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig { queue_capacity: 4096, ..ShardedConfig::with_shards(shards) },
    );
    for &(a, b, w) in &edges {
        assert!(service.submit(a, b, w));
    }
    drain(&service, edges.len() as u64);

    // The premise of the gate: the merge actually stranded something —
    // the pre-migration best view is strictly below the solo answer.
    let diluted = service.current_detection();
    assert!(
        diluted.best.density < want_density * (1.0 - 1e-9),
        "N={shards}: expected strand dilution, got {} vs solo {}",
        diluted.best.density,
        want_density
    );

    let report = service.rebalance();
    let stats = service.migration_stats();
    assert!(
        stats.strand_repairs >= 1,
        "N={shards}: the home-vs-home merge must trigger a strand repair"
    );
    assert!(!report.moves.is_empty(), "N={shards}: a slice must actually move");

    // The gate itself: post-migration == solo, members and density.
    let global = service.shutdown();
    assert_eq!(global.total_updates, edges.len() as u64);
    let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
    got.sort_unstable();
    assert_eq!(got, want_members, "N={shards}: post-migration members diverge from solo");
    assert_eq!(global.best.size, want_size, "N={shards}: size mismatch");
    assert!(
        (global.best.density - want_density).abs() < 1e-9,
        "N={shards}: post-migration density {} vs solo {}",
        global.best.density,
        want_density
    );
    println!(
        "N={shards}: diluted density {:.3} migrated to {:.3} (solo {:.3}, {} members, {} \
         edges moved)",
        diluted.best.density,
        global.best.density,
        want_density,
        want_size,
        report.edges_moved(),
    );
}

#[test]
fn stranded_merge_is_migrated_to_exactness_across_2_shards() {
    assert_exact_after_migration(2);
}

#[test]
fn stranded_merge_is_migrated_to_exactness_across_4_shards() {
    assert_exact_after_migration(4);
}

#[test]
fn stranded_merge_is_migrated_to_exactness_across_8_shards() {
    assert_exact_after_migration(8);
}

#[test]
fn load_triggered_migration_preserves_exactness() {
    // An aggressive load policy on a skewed stream: whatever the
    // scheduler decides to move, the answer must stay the solo one.
    let edges = stranded_merge_stream();
    let (want_size, want_density, want_members) = solo_detection(&edges);
    let service = ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            migration: MigrationPolicy { imbalance_ratio: 1.1, min_updates: 16, max_load_moves: 4 },
            queue_capacity: 4096,
            ..ShardedConfig::with_shards(4)
        },
    );
    for &(a, b, w) in &edges {
        assert!(service.submit(a, b, w));
    }
    drain(&service, edges.len() as u64);
    let _ = service.rebalance();
    let _ = service.rebalance(); // a second pass must stay stable
    let global = service.shutdown();
    let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
    got.sort_unstable();
    assert_eq!(got, want_members);
    assert_eq!(global.best.size, want_size);
    assert!((global.best.density - want_density).abs() < 1e-9);
}

#[test]
fn load_move_targets_the_coldest_shard_by_window_with_a_size_tie_break() {
    // Pure load-trigger workload (no merges, so no strand repairs run
    // first): one dominant ring hammers its home shard while several
    // small disjoint components spread residual state unevenly across
    // the others. The scheduler must shed the ring onto the shard that
    // is coldest by *windowed* load, breaking ties toward the fewest
    // resident edges — verified against the key recomputed from the
    // stats observed right before the pass.
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    // Light disjoint paths of different lengths: every shard ends up
    // with a different resident edge count.
    for p in 0..9u32 {
        let base = 3_000 + p * 20;
        for i in 0..(2 + p % 5) {
            edges.push((v(base + i), v(base + i + 1), 1.0));
        }
    }
    // The dominant ring: ~8x the traffic of everything else combined.
    for a in 10..17u32 {
        for b in 10..17u32 {
            if a != b {
                for _ in 0..6 {
                    edges.push((v(a), v(b), 10.0));
                }
            }
        }
    }
    let (want_size, want_density, want_members) = solo_detection(&edges);

    let service = ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            migration: MigrationPolicy { imbalance_ratio: 1.3, min_updates: 32, max_load_moves: 1 },
            queue_capacity: 4096,
            ..ShardedConfig::with_shards(4)
        },
    );
    for &(a, b, w) in &edges {
        assert!(service.submit(a, b, w));
    }
    drain(&service, edges.len() as u64);

    // Snapshot the exact signal the scheduler will read. No load pass
    // has run yet, so the window equals the raw counters.
    let before = service.stats();
    let report = service.rebalance_if_needed().expect("the skew must trigger a pass");
    let mv = report
        .moves
        .iter()
        .find(|m| m.trigger == MigrationTrigger::LoadBalance)
        .expect("a load move must run");

    // The source is the hottest shard, and the target is the argmin of
    // (windowed load, resident edges, index) among the others — the
    // size-aware choice pick_load_move promises.
    let hottest =
        before.iter().max_by_key(|s| s.service.updates_applied).map(|s| s.shard).expect("stats");
    assert_eq!(mv.from, hottest, "the load move must shed the hottest shard");
    let expected_target = before
        .iter()
        .filter(|s| s.shard != mv.from)
        .min_by_key(|s| (s.service.updates_applied, s.service.edges_resident, s.shard))
        .map(|s| s.shard)
        .expect("stats");
    assert_eq!(
        mv.to, expected_target,
        "the target must be coldest-by-window with the resident-size tie-break \
         (stats before the pass: {before:?})"
    );

    // Exactness survives the move.
    let global = service.shutdown();
    assert_eq!(global.total_updates, edges.len() as u64);
    let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
    got.sort_unstable();
    assert_eq!(got, want_members);
    assert_eq!(global.best.size, want_size);
    assert!((global.best.density - want_density).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite property: ANY two separately-homed components
    /// bridged by an edge, then migrated, detect exactly what a solo
    /// engine over the same stream detects.
    #[test]
    fn bridged_components_migrate_to_solo_exactness(
        size_a in 2u32..6,
        size_b in 2u32..6,
        weight in 2u32..40,
        noise in proptest::collection::vec((0u32..40, 0u32..40), 0..20),
        shards in 2usize..5,
        extra_bridges in 0usize..3,
    ) {
        let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
        // Noise paths over a low id range (distinct components of their
        // own, merging freely among themselves).
        for &(a, b) in &noise {
            if a != b {
                edges.push((v(a), v(b), 1.0));
            }
        }
        // Two dense components over disjoint high id ranges.
        for (base, size) in [(1_000, size_a), (2_000, size_b)] {
            for a in 0..size {
                for b in 0..size {
                    if a != b {
                        edges.push((v(base + a), v(base + b), weight as f64));
                    }
                }
            }
        }
        // The bridge(s).
        edges.push((v(1_000), v(2_000), weight as f64));
        for i in 0..extra_bridges as u32 {
            edges.push((v(1_000 + i % size_a), v(2_000 + (i + 1) % size_b), weight as f64));
        }
        let (want_size, want_density, want_members) = solo_detection(&edges);

        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig::with_shards(shards),
        );
        for &(a, b, w) in &edges {
            prop_assert!(service.submit(a, b, w));
        }
        let _ = service.rebalance();
        let global = service.shutdown();
        let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
        got.sort_unstable();
        prop_assert_eq!(got, want_members);
        prop_assert_eq!(global.best.size, want_size);
        prop_assert!((global.best.density - want_density).abs() < 1e-9);
    }
}
