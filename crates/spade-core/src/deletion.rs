//! Peeling-sequence reordering with edge deletion (Appendix C.1).
//!
//! Deleting (or lightening) edge `(u_i, u_j)` with `i < j` in the peeling
//! order decreases only `Δ_i` — the earlier endpoint counted the edge at
//! its peel step; the later one did not (`u_i ∉ S_j`). The lightened
//! vertex may now belong *earlier* in the sequence, so the pass has two
//! phases:
//!
//! 1. **Backward walk** (`T_d` Case 1/2). Seed the pending queue with
//!    `u_i` at `Δ_i - c`. Walk positions `k = i-1, i-2, …`: while the
//!    candidate's *full-set* weight `w_{u_k}(S_0)` (an upper bound of its
//!    weight in any remaining set) does not beat the queue minimum, the
//!    candidate might interleave with queued vertices — move it into the
//!    queue at its stored weight `Δ_k` (exact: `S_k` is precisely
//!    `{u_k} ∪ T ∪ S_{i+1}` at that moment) and *raise* the priorities of
//!    its queued neighbors, whose remaining sets just grew by `u_k`.
//!    Stop at the first candidate that strictly beats the queue minimum:
//!    the old greedy property then guarantees the whole prefix before it
//!    precedes everything queued (see the chain in DESIGN.md §4).
//! 2. **Forward merge** — identical to the insertion merge loop
//!    (the shared window runner in `crate::reorder`) starting at position `i+1`.
//!
//! The emitted window is written back in place and reported to the
//! detection index like any insertion window.

use crate::order::PeelKey;
use crate::reorder::{run_window, seed, seed_with_weight, ReorderScratch, ReorderStats};
use crate::state::PeelingState;
use spade_graph::{DynamicGraph, GraphError, VertexId};

/// Removes `amount` of weight from edge `(src, dst)` in `graph` (deleting
/// the edge when fully drained) and restores the greedy peeling invariant
/// of `state`.
///
/// `on_window` receives the rewritten physical range exactly as in
/// [`crate::reorder::reorder`].
pub fn delete_and_reorder(
    graph: &mut DynamicGraph,
    state: &mut PeelingState,
    scratch: &mut ReorderScratch,
    src: VertexId,
    dst: VertexId,
    amount: f64,
    mut on_window: impl FnMut(usize, &[f64]),
) -> Result<ReorderStats, GraphError> {
    let mut stats = ReorderStats::default();
    let removed = graph.decrease_edge(src, dst, amount)?;

    let (pi, pj) = (state.position_of(src), state.position_of(dst));
    let (lightened, other) = if pi < pj { (src, dst) } else { (dst, src) };
    let (i, j) = (pi.min(pj), pi.max(pj));

    scratch.begin_epoch(graph.num_vertices());

    // Phase 1a: seed the earlier endpoint — its stored weight counted the
    // deleted edge (`u_j ∈ S_i`), so the exact new weight is `Δ_i - c`.
    seed_with_weight(graph, scratch, lightened, state.delta_at(i) - removed, &mut stats);
    // Phase 1b: seed the later endpoint straight out of the suffix. Its
    // stored `Δ_j` is unchanged, but its weight in every set containing
    // the earlier endpoint dropped by `c`, so it may now belong before
    // position `j` — even before position `i`. Its old slot is consumed by
    // the forced window extent below (the `lifted` mark makes the merge
    // loop skip it even if the vertex popped earlier).
    scratch.mark_lifted(other);
    seed(graph, state, scratch, other, i + 1, &mut stats);

    // Phase 1c: backward walk. While the candidate's full-set weight (an
    // upper bound of its weight under any remaining set) does not strictly
    // beat the queue minimum, the candidate may interleave — absorb it.
    let mut start = i;
    while start > 0 {
        let head = scratch.queue.peek().expect("queue non-empty during backward walk");
        let cand = state.vertex_at(start - 1);
        let upper = PeelKey::new(graph.incident_weight(cand), cand);
        if upper < head {
            break;
        }
        raise_queued_neighbors(graph, scratch, cand, &mut stats);
        seed_with_weight(graph, scratch, cand, state.delta_at(start - 1), &mut stats);
        start -= 1;
    }

    // Phase 2: forward merge from the first untouched suffix position,
    // forced to consume the later endpoint's old slot.
    let mut k = i + 1;
    run_window(graph, state, scratch, start, &mut k, j + 1, &mut stats, &mut on_window);
    Ok(stats)
}

/// Lowers the prior suspiciousness of `v` to `new_weight` and restores the
/// greedy invariant. A vertex-weight decrease behaves exactly like an
/// incident-edge deletion without a second endpoint: only `v`'s own
/// peeling weight drops (by the same amount at every prefix), so the
/// deletion pass applies with an empty "later endpoint" phase.
pub fn decrease_vertex_weight_and_reorder(
    graph: &mut DynamicGraph,
    state: &mut PeelingState,
    scratch: &mut ReorderScratch,
    v: VertexId,
    new_weight: f64,
    mut on_window: impl FnMut(usize, &[f64]),
) -> Result<ReorderStats, GraphError> {
    let mut stats = ReorderStats::default();
    let drop = graph.vertex_weight(v) - new_weight;
    debug_assert!(drop >= 0.0, "use the insertion reorder for weight increases");
    graph.set_vertex_weight(v, new_weight)?;
    if drop == 0.0 {
        return Ok(stats);
    }
    let i = state.position_of(v);
    scratch.begin_epoch(graph.num_vertices());
    seed_with_weight(graph, scratch, v, state.delta_at(i) - drop, &mut stats);
    let mut start = i;
    while start > 0 {
        let head = scratch.queue.peek().expect("queue non-empty during backward walk");
        let cand = state.vertex_at(start - 1);
        let upper = PeelKey::new(graph.incident_weight(cand), cand);
        if upper < head {
            break;
        }
        raise_queued_neighbors(graph, scratch, cand, &mut stats);
        seed_with_weight(graph, scratch, cand, state.delta_at(start - 1), &mut stats);
        start -= 1;
    }
    let mut k = i + 1;
    run_window(graph, state, scratch, start, &mut k, 0, &mut stats, &mut on_window);
    Ok(stats)
}

/// Accounting of one [`remove_member_slice`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SliceRemoval {
    /// Directed member-to-member edges deleted.
    pub edges_removed: usize,
    /// Total accumulated edge suspiciousness removed with them.
    pub edge_weight_removed: f64,
    /// Member vertices whose prior suspiciousness was reset to zero.
    pub vertices_cleared: usize,
    /// Total vertex suspiciousness removed.
    pub vertex_weight_removed: f64,
    /// Combined reorder counters across every incremental pass.
    pub reorder: ReorderStats,
}

/// Removes the *induced slice* of `members` from the graph — every edge
/// with **both** endpoints in the set, plus the members' prior
/// suspiciousness weights — and restores the greedy peeling invariant
/// after each step.
///
/// This is the source-shard half of a component migration
/// (`crate::shard::migrate`): the slice mirrors exactly what
/// [`crate::persist::SubgraphSnapshot::extract`] exports at `hops = 0`,
/// so extract → remove → replay moves the slice without loss. Edges with
/// only one endpoint in the set are left untouched (they are not part of
/// the extracted snapshot); member vertices stay materialized as
/// zero-weight singletons, which a dense-id engine cannot reclaim and
/// which drift harmlessly to the head of the peeling order.
///
/// Each edge goes through the proven incremental deletion pass rather
/// than a wholesale re-peel: the slice is community-local, so the
/// reorder windows stay small, and order/state/detection invariants are
/// maintained by construction at every intermediate step.
pub fn remove_member_slice(
    graph: &mut DynamicGraph,
    state: &mut PeelingState,
    scratch: &mut ReorderScratch,
    members: &[VertexId],
    mut on_window: impl FnMut(usize, &[f64]),
) -> Result<SliceRemoval, GraphError> {
    let mut removal = SliceRemoval::default();
    let mut inside = vec![false; graph.num_vertices()];
    let mut present: Vec<VertexId> = Vec::with_capacity(members.len());
    for &m in members {
        if graph.contains_vertex(m) && !inside[m.index()] {
            inside[m.index()] = true;
            present.push(m);
        }
    }
    // Collect before mutating: each member-to-member edge appears exactly
    // once in its source's out-list.
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for &m in &present {
        for nb in graph.out_neighbors(m) {
            if inside[nb.v.index()] {
                edges.push((m, nb.v, nb.w));
            }
        }
    }
    for &(src, dst, w) in &edges {
        let stats = delete_and_reorder(graph, state, scratch, src, dst, w, &mut on_window)?;
        removal.reorder.merge(stats);
        removal.edges_removed += 1;
        removal.edge_weight_removed += w;
    }
    for &m in &present {
        let a = graph.vertex_weight(m);
        if a > 0.0 {
            let stats =
                decrease_vertex_weight_and_reorder(graph, state, scratch, m, 0.0, &mut on_window)?;
            removal.reorder.merge(stats);
            removal.vertices_cleared += 1;
            removal.vertex_weight_removed += a;
        }
    }
    Ok(removal)
}

/// When a backward-walk candidate joins the queue, every queued neighbor's
/// remaining set gains the candidate — their priorities must rise by the
/// mutual edge weight (the deletion-side mirror of the insertion loop's
/// decrements).
fn raise_queued_neighbors(
    graph: &DynamicGraph,
    scratch: &mut ReorderScratch,
    cand: VertexId,
    stats: &mut ReorderStats,
) {
    for nb in graph.neighbors(cand) {
        if scratch.queue.contains(nb.v) {
            scratch.queue.add_weight(nb.v, nb.w);
        }
    }
    stats.edges_scanned += graph.degree(cand);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn check_delete(base: &DynamicGraph, deletions: &[(u32, u32)]) {
        let mut graph = base.clone();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        for &(a, b) in deletions {
            let w = graph.edge_weight(v(a), v(b)).unwrap();
            delete_and_reorder(&mut graph, &mut state, &mut scratch, v(a), v(b), w, |_, _| {})
                .unwrap();
            let fresh = peel(&graph);
            assert_eq!(
                state.logical_order(),
                fresh.order,
                "deletion of ({a},{b}) diverged from static peel"
            );
            state.validate_greedy(&graph, 1e-9);
        }
    }

    fn paper_example_plus_edge() -> DynamicGraph {
        // Fig. 16's setting: the Fig. 3 graph *with* the (u1, u5) edge, from
        // which the outdated edge is then deleted.
        let mut g = DynamicGraph::new();
        for _ in 0..5 {
            g.add_vertex(0.0).unwrap();
        }
        g.insert_edge(v(0), v(1), 2.0).unwrap();
        g.insert_edge(v(1), v(2), 1.0).unwrap();
        g.insert_edge(v(1), v(4), 4.0).unwrap();
        g.insert_edge(v(3), v(4), 2.0).unwrap();
        g.insert_edge(v(0), v(3), 2.0).unwrap();
        g.insert_edge(v(0), v(4), 4.0).unwrap();
        g
    }

    #[test]
    fn paper_deletion_example() {
        check_delete(&paper_example_plus_edge(), &[(0, 4)]);
    }

    #[test]
    fn delete_every_edge_one_by_one() {
        let g = paper_example_plus_edge();
        let edges: Vec<(u32, u32)> = g.iter_edges().map(|(s, d, _)| (s.0, d.0)).collect();
        check_delete(&g, &edges);
    }

    #[test]
    fn insert_then_delete_restores_order() {
        let base = paper_example_plus_edge();
        let mut graph = base.clone();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        let before = state.logical_order();

        graph.insert_edge(v(2), v(3), 6.0).unwrap();
        let mut blacks = Vec::new();
        crate::reorder::reorder_single_edge(
            &graph,
            &mut state,
            v(2),
            v(3),
            &mut scratch,
            &mut blacks,
            |_, _| {},
        );
        delete_and_reorder(&mut graph, &mut state, &mut scratch, v(2), v(3), 6.0, |_, _| {})
            .unwrap();
        assert_eq!(state.logical_order(), before);
        state.validate_greedy(&graph, 1e-9);
    }

    #[test]
    fn partial_decrease_reorders_correctly() {
        let base = paper_example_plus_edge();
        let mut graph = base.clone();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        delete_and_reorder(&mut graph, &mut state, &mut scratch, v(1), v(4), 3.0, |_, _| {})
            .unwrap();
        assert_eq!(graph.edge_weight(v(1), v(4)), Some(1.0));
        assert_eq!(state.logical_order(), peel(&graph).order);
        state.validate_greedy(&graph, 1e-9);
    }

    #[test]
    fn deleting_missing_edge_errors_without_corruption() {
        let base = paper_example_plus_edge();
        let mut graph = base.clone();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let before = state.logical_order();
        let mut scratch = ReorderScratch::new();
        let err =
            delete_and_reorder(&mut graph, &mut state, &mut scratch, v(2), v(4), 1.0, |_, _| {});
        assert!(err.is_err());
        assert_eq!(state.logical_order(), before);
    }

    #[test]
    fn remove_member_slice_deletes_the_induced_subgraph_exactly() {
        // Two disjoint communities plus one cross edge into a bystander.
        let mut graph = DynamicGraph::new();
        for _ in 0..8 {
            graph.add_vertex(0.0).unwrap();
        }
        graph.set_vertex_weight(v(1), 2.5).unwrap();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    graph.insert_edge(v(a), v(b), 5.0).unwrap();
                }
            }
        }
        graph.insert_edge(v(4), v(5), 3.0).unwrap();
        graph.insert_edge(v(1), v(6), 1.5).unwrap(); // member -> bystander
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();

        let removal = remove_member_slice(
            &mut graph,
            &mut state,
            &mut scratch,
            &[v(0), v(1), v(2)],
            |_, _| {},
        )
        .unwrap();
        assert_eq!(removal.edges_removed, 6);
        assert!((removal.edge_weight_removed - 30.0).abs() < 1e-12);
        assert_eq!(removal.vertices_cleared, 1);
        assert!((removal.vertex_weight_removed - 2.5).abs() < 1e-12);

        // Member-to-member edges are gone; the cross edge and the other
        // community survive; member weights are zeroed.
        assert_eq!(graph.edge_weight(v(0), v(1)), None);
        assert_eq!(graph.edge_weight(v(1), v(6)), Some(1.5));
        assert_eq!(graph.edge_weight(v(4), v(5)), Some(3.0));
        assert_eq!(graph.vertex_weight(v(1)), 0.0);
        graph.check_invariants().unwrap();
        assert_eq!(state.logical_order(), peel(&graph).order);
        state.validate_greedy(&graph, 1e-9);
    }

    #[test]
    fn remove_member_slice_tolerates_unknown_and_duplicate_members() {
        let mut graph = paper_example_plus_edge();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        let removal = remove_member_slice(
            &mut graph,
            &mut state,
            &mut scratch,
            &[v(0), v(0), v(4), v(99)], // duplicate + out-of-graph ids
            |_, _| {},
        )
        .unwrap();
        // Only the (0, 4) and (4, 0)-direction edges are induced.
        assert_eq!(removal.edges_removed, 1);
        assert_eq!(graph.edge_weight(v(0), v(4)), None);
        assert_eq!(state.logical_order(), peel(&graph).order);
        state.validate_greedy(&graph, 1e-9);
    }

    #[test]
    fn remove_member_slice_of_everything_empties_the_graph() {
        let mut graph = paper_example_plus_edge();
        let total_edges = graph.num_edges();
        let total_weight = graph.total_weight();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        let members: Vec<VertexId> = graph.vertices().collect();
        let removal =
            remove_member_slice(&mut graph, &mut state, &mut scratch, &members, |_, _| {}).unwrap();
        assert_eq!(removal.edges_removed, total_edges);
        assert!(
            (removal.edge_weight_removed + removal.vertex_weight_removed - total_weight).abs()
                < 1e-9
        );
        assert_eq!(graph.num_edges(), 0);
        assert!((graph.total_weight()).abs() < 1e-12);
        assert_eq!(state.logical_order(), peel(&graph).order);
    }

    #[test]
    fn randomized_interleaved_inserts_and_deletes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for _trial in 0..30 {
            let n = rng.gen_range(4..16usize);
            let mut graph = DynamicGraph::new();
            for _ in 0..n {
                graph.add_vertex(0.0).unwrap();
            }
            for _ in 0..rng.gen_range(2..3 * n) {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a != b {
                    let _ = graph.insert_edge(v(a), v(b), rng.gen_range(1..6) as f64);
                }
            }
            let mut state = PeelingState::from_outcome(&peel(&graph));
            let mut scratch = ReorderScratch::new();
            let mut blacks = Vec::new();
            for _ in 0..rng.gen_range(1..20) {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a == b {
                    continue;
                }
                if rng.gen_bool(0.5) {
                    if graph.insert_edge(v(a), v(b), rng.gen_range(1..6) as f64).is_ok() {
                        crate::reorder::reorder_single_edge(
                            &graph,
                            &mut state,
                            v(a),
                            v(b),
                            &mut scratch,
                            &mut blacks,
                            |_, _| {},
                        );
                    }
                } else if let Some(w) = graph.edge_weight(v(a), v(b)) {
                    let amount = if rng.gen_bool(0.5) { w } else { (w / 2.0).max(0.5) };
                    delete_and_reorder(
                        &mut graph,
                        &mut state,
                        &mut scratch,
                        v(a),
                        v(b),
                        amount,
                        |_, _| {},
                    )
                    .unwrap();
                }
            }
            assert_eq!(state.logical_order(), peel(&graph).order, "diverged");
            state.validate_greedy(&graph, 1e-9);
        }
    }
}
