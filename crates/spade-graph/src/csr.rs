//! Immutable compressed-sparse-row snapshot.
//!
//! The static baselines (DG/DW/FD run from scratch on every update, as in
//! the paper's Figure 10 comparison) traverse every edge of the graph once
//! per peeling run. A CSR layout keeps each vertex's incident edges in one
//! contiguous slab, which is markedly faster than chasing per-vertex `Vec`s
//! and gives the *baseline* its best possible showing — the speedups we
//! report for the incremental algorithms are therefore conservative.
//!
//! The snapshot stores the **undirected view** of incidence: for every
//! vertex, all incident edges (out and in) with their weights, which is the
//! multiset the peeling weight (Eq. 2) sums over.

use crate::graph::DynamicGraph;
use crate::id::VertexId;

/// A frozen CSR incidence snapshot of a [`DynamicGraph`].
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `offsets[u] .. offsets[u + 1]` delimits `u`'s incidence slab.
    offsets: Vec<u32>,
    /// Concatenated incident neighbors.
    neighbors: Vec<VertexId>,
    /// Edge weight parallel to `neighbors`.
    weights: Vec<f64>,
    /// Per-vertex suspiciousness `a_u`.
    vertex_weights: Vec<f64>,
    /// `f(V)` at snapshot time.
    total_weight: f64,
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a snapshot from the current state of `g`.
    pub fn from_graph(g: &DynamicGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut degree_total = 0u32;
        offsets.push(0);
        for u in g.vertices() {
            degree_total += g.degree(u) as u32;
            offsets.push(degree_total);
        }
        let mut neighbors = Vec::with_capacity(degree_total as usize);
        let mut weights = Vec::with_capacity(degree_total as usize);
        for u in g.vertices() {
            for nb in g.neighbors(u) {
                neighbors.push(nb.v);
                weights.push(nb.w);
            }
        }
        let vertex_weights = g.vertices().map(|u| g.vertex_weight(u)).collect();
        CsrGraph {
            offsets,
            neighbors,
            weights,
            vertex_weights,
            total_weight: g.total_weight(),
            num_edges: g.num_edges(),
        }
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of directed edges at snapshot time.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `f(V)` at snapshot time.
    #[inline(always)]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The suspiciousness weight `a_u`.
    #[inline(always)]
    pub fn vertex_weight(&self, u: VertexId) -> f64 {
        self.vertex_weights[u.index()]
    }

    /// All incident edges of `u` as parallel `(neighbors, weights)` slices.
    #[inline(always)]
    pub fn incidence(&self, u: VertexId) -> (&[VertexId], &[f64]) {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        (&self.neighbors[lo..hi], &self.weights[lo..hi])
    }

    /// The incident-weight `w_u(V)` of `u` (vertex weight plus incident edge
    /// weights).
    pub fn incident_weight(&self, u: VertexId) -> f64 {
        let (_, ws) = self.incidence(u);
        self.vertex_weights[u.index()] + ws.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for i in 0..4 {
            g.add_vertex(i as f64).unwrap();
        }
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(2), 2.0).unwrap();
        g.insert_edge(v(2), v(0), 3.0).unwrap();
        g
    }

    #[test]
    fn snapshot_matches_dynamic_graph() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        assert!((csr.total_weight() - g.total_weight()).abs() < 1e-12);
        for u in g.vertices() {
            assert_eq!(csr.vertex_weight(u), g.vertex_weight(u));
            assert!((csr.incident_weight(u) - g.incident_weight(u)).abs() < 1e-12);
            let (nbrs, ws) = csr.incidence(u);
            let dynamic: Vec<_> = g.neighbors(u).collect();
            assert_eq!(nbrs.len(), dynamic.len());
            assert_eq!(ws.len(), dynamic.len());
            for (i, nb) in dynamic.iter().enumerate() {
                assert_eq!(nbrs[i], nb.v);
                assert_eq!(ws[i], nb.w);
            }
        }
    }

    #[test]
    fn snapshot_is_independent_of_later_mutation() {
        let mut g = sample();
        let csr = CsrGraph::from_graph(&g);
        g.insert_edge(v(0), v(3), 10.0).unwrap();
        assert_eq!(csr.num_edges(), 3);
        let (nbrs, _) = csr.incidence(v(0));
        assert_eq!(nbrs.len(), 2);
    }

    #[test]
    fn isolated_vertices_have_empty_incidence() {
        let mut g = DynamicGraph::new();
        g.add_vertex(5.0).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let (nbrs, ws) = csr.incidence(v(0));
        assert!(nbrs.is_empty() && ws.is_empty());
        assert_eq!(csr.incident_weight(v(0)), 5.0);
    }
}
