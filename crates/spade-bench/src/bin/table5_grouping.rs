//! Table 5 — elapsed time `E` and latency `L`: static algorithms vs
//! batch-1K incremental vs edge grouping, on the Grab surrogates.
//!
//! `E` is the mean processing time per edge (microseconds); `L` is the
//! Eq. 4 total latency normalized to the static competitor (static = 1).
//! The shape to reproduce: grouping cuts `E` further than batch-1K (it
//! accumulates larger benign batches) and slashes `L` by orders of
//! magnitude because urgent edges flush immediately.
//!
//! `cargo run -p spade-bench --release --bin table5_grouping`

use spade_bench::replay::static_latency;
use spade_bench::{
    grab_datasets, measure_grouped_replay, measure_incremental_replay, measure_static_baseline,
    MetricKind,
};
use spade_core::GroupingConfig;
use spade_metrics::table::fmt_us;
use spade_metrics::Table;

fn main() {
    println!("Table 5: elapsed time E (per edge) and latency L (normalized to static)\n");
    let mut header: Vec<String> = vec!["Dataset".into()];
    for kind in MetricKind::ALL {
        header.push(format!("{} E", kind.name()));
        header.push(format!("{} L", kind.name()));
    }
    for kind in MetricKind::ALL {
        header.push(format!("{}-1K E", kind.inc_name()));
        header.push(format!("{}-1K L", kind.inc_name()));
    }
    for kind in MetricKind::ALL {
        header.push(format!("{} E", kind.grouped_name()));
        header.push(format!("{} L", kind.grouped_name()));
    }
    let mut table = Table::new(header);

    for data in grab_datasets() {
        let mut row = vec![data.name.to_string()];
        let mut static_latencies = Vec::new();
        for kind in MetricKind::ALL {
            // The paper's static E column is the duration of one full run
            // (it *is* the per-update cost of the from-scratch competitor).
            let us = measure_static_baseline(kind, &data.initial, &data.increments, 3);
            let lat = static_latency(&data.increments, us);
            row.push(format!("{:.3}s", us / 1e6));
            row.push("1".to_string());
            static_latencies.push(lat);
        }
        for (i, kind) in MetricKind::ALL.into_iter().enumerate() {
            let report = measure_incremental_replay(kind, &data.initial, &data.increments, 1_000);
            row.push(fmt_us(report.per_edge_us()));
            row.push(format!("{:.3}", report.latency.normalized_to(&static_latencies[i])));
        }
        for (i, kind) in MetricKind::ALL.into_iter().enumerate() {
            let report = measure_grouped_replay(
                kind,
                &data.initial,
                &data.increments,
                GroupingConfig::default(),
                |_, _| {},
            );
            row.push(fmt_us(report.per_edge_us()));
            row.push(format!("{:.4}", report.latency.normalized_to(&static_latencies[i])));
        }
        table.row(row);
    }
    table.print();
    println!("\n(paper: IncDGG/IncDWG/IncFDG are up to 7.1x/9.7x/1.25x faster than the 1K");
    println!(" batch versions, and grouping latencies L fall to the 1e-2..1e-3 range)");
}
