//! The p99-latency-vs-throughput frontier of the SLO batch scheduler.
//!
//! Sweeps detection-latency budgets over three traffic shapes against a
//! single [`SpadeService`] (the per-shard hot path):
//!
//! * **bursty** — unpaced full-backlog replay at coalesce 1024. Under a
//!   standing backlog the spring push never waits, so every budget point
//!   sustains the cap-1024 throughput; queue waits are backlog-bound and
//!   tight budgets record misses. These points are marked
//!   `feasible: false` — the offered load exceeds what any scheduler
//!   could serve inside a sub-backlog budget.
//! * **drip** — paced open-loop arrivals well under capacity, budget
//!   taken from [`IngestConfig::deadline`] (the configured default).
//!   Queue wait tracks `budget − margin`: the scheduler holds batches
//!   open exactly as long as the slackest in-queue budget allows, so
//!   tighter budgets buy lower p99 monotonically, with zero misses.
//! * **mixed** — the same pacing with per-transaction budgets
//!   alternating tight/loose through
//!   [`SpadeService::submit_with_budget`]: the batch boundary follows
//!   the *tightest* staged budget, so both classes meet their SLO.
//!
//! Reference rows (`budget_us: 0`) anchor the frontier: a paced
//! per-edge (coalesce 1) run for the latency floor and an unpaced
//! cap-1024 run for the throughput ceiling.
//!
//! Each paced run carries a concurrent [`StallProbe`]: the zero-miss
//! contract binds the *scheduler*, so a row measured while the platform
//! froze threads for longer than the row can absorb (the spring push
//! reserves [`SCHED_SLACK`]; sub-margin budgets only cover their own
//! dequeue) is demoted to `feasible: false` rather than letting host
//! noise flap the gate.
//!
//! Writes `BENCH_frontier.json` (see `--out`) and prints a table.
//! `--smoke` (or `SPADE_QUICK=1`) shrinks the workload for CI.
//!
//! `cargo run -p spade-bench --release --bin bench_frontier [-- --smoke]`

use spade_core::metric::WeightedDensity;
use spade_core::service::{metric_names, SCHED_SLACK};
use spade_core::stream::StreamEdge;
use spade_core::{IngestConfig, ServiceStats, SpadeEngine, SpadeService};
use spade_gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade_metrics::{MetricsSnapshot, Table};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured operating point on the frontier.
struct Sample {
    scenario: &'static str,
    /// Budget in microseconds; 0 = no budget (reference row).
    budget_us: u64,
    /// Whether the offered load is feasible for this budget — the rows
    /// the zero-miss acceptance gate applies to.
    feasible: bool,
    coalesce: usize,
    edges: usize,
    elapsed_us: f64,
    /// Worst platform scheduling stall the probe observed during the
    /// run (zero for unpaced rows, which run without a probe).
    sched_stall: Duration,
    stats: ServiceStats,
    metrics: MetricsSnapshot,
}

impl Sample {
    fn throughput_eps(&self) -> f64 {
        self.edges as f64 / (self.elapsed_us / 1e6).max(1e-9)
    }

    fn stage_q(&self, name: &str, q: f64) -> u64 {
        self.metrics.histograms.get(name).map_or(0, |h| h.quantile(q))
    }
}

/// Same benign-heavy marketplace workload as `bench_ingest`, so the
/// frontier and the throughput trajectory describe the same traffic.
fn workload(smoke: bool) -> Vec<StreamEdge> {
    let scale = if smoke { 0.1 } else { 1.0 };
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: ((4_000.0 * scale) as usize).max(150),
        merchants: ((1_200.0 * scale) as usize).max(50),
        transactions: ((20_000.0 * scale) as usize).max(1_000),
        seed: 0x1465,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 2,
            transactions_per_instance: ((400.0 * scale) as usize).max(60),
            amount: 250.0,
            ..Default::default()
        },
    );
    injected.edges
}

fn spawn_service(coalesce: usize, deadline: Option<Duration>) -> SpadeService {
    SpadeService::spawn_with(
        SpadeEngine::new(WeightedDensity),
        None,
        IngestConfig { queue_capacity: 4096, coalesce, deadline },
        "frontier-bench".into(),
    )
}

/// Polls until the worker has applied `target` updates (bounded so a
/// stalled worker aborts instead of hanging CI).
fn drain_to(service: &SpadeService, target: u64) -> ServiceStats {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = service.stats();
        if stats.updates_applied >= target {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "worker stalled at {}/{target} updates",
            stats.updates_applied
        );
        std::thread::yield_now();
    }
}

/// Unpaced full-backlog replay (the throughput end of the frontier).
fn run_bursty(edges: &[StreamEdge], budget: Option<Duration>) -> Sample {
    let service = spawn_service(1024, budget);
    let started = Instant::now();
    for e in edges {
        assert!(service.submit(e.src, e.dst, e.raw));
    }
    // End of stream: flush so the final partial batch is not held to its
    // budget boundary (a real producer closes its stream the same way).
    // Mid-run scheduling is untouched — under a standing backlog the
    // spring push never waits anyway.
    assert!(service.flush());
    let stats = drain_to(&service, edges.len() as u64);
    let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
    let metrics = service.metrics();
    service.shutdown();
    Sample {
        scenario: "bursty",
        budget_us: budget.map_or(0, |b| b.as_micros() as u64),
        // A standing backlog is not a feasible operating point for a
        // sub-backlog budget: misses here are the offered load's fault.
        feasible: false,
        coalesce: 1024,
        edges: edges.len(),
        elapsed_us,
        sched_stall: Duration::ZERO,
        stats,
        metrics,
    }
}

/// Measures platform scheduling stalls concurrently with a paced run:
/// an independent sleeper wakes every 200us and records its worst
/// oversleep. On a host whose OS preempts threads for longer than the
/// scheduler's [`SCHED_SLACK`] reserve, a budgeted batch can miss its
/// deadline through no fault of the batch boundary — the probe detects
/// exactly those windows (a CPU-wide freeze spans the sleeper's next
/// wake too) *without ever looking at the miss counters*, so rows run
/// under a stall bigger than they can absorb are demoted to
/// `feasible: false` instead of flapping the zero-miss gate.
struct StallProbe {
    stop: Arc<AtomicBool>,
    worst_ns: Arc<AtomicU64>,
    handle: std::thread::JoinHandle<()>,
}

impl StallProbe {
    fn start() -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let worst_ns = Arc::new(AtomicU64::new(0));
        let (stop2, worst2) = (Arc::clone(&stop), Arc::clone(&worst_ns));
        let handle = std::thread::spawn(move || {
            let tick = Duration::from_micros(200);
            // audit: probe flag and watermark; join in finish() orders the final read
            while !stop2.load(Ordering::Relaxed) {
                let slept = Instant::now();
                std::thread::sleep(tick);
                let over = slept.elapsed().saturating_sub(tick);
                worst2.fetch_max(over.as_nanos() as u64, Ordering::Relaxed);
            }
        });
        Self { stop, worst_ns, handle }
    }

    fn finish(self) -> Duration {
        // audit: probe flag and watermark; join in finish() orders the final read
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
        Duration::from_nanos(self.worst_ns.load(Ordering::Relaxed))
    }
}

/// The biggest probe-measured stall a budgeted row may run under and
/// still claim feasibility. A held batch absorbs stalls up to the peel
/// margin (at least [`SCHED_SLACK`]); a sub-margin budget degrades to
/// immediate applies and absorbs up to the budget itself. The probe
/// under-reports a freeze by at most its 200us tick, so judging at 4/5
/// keeps the invariant that a row left feasible *could not* have missed
/// given the worst platform behavior actually measured.
fn stall_tolerance(budget: Duration) -> Duration {
    budget.min(SCHED_SLACK) * 4 / 5
}

/// Paced open-loop arrivals at `pace` inter-arrival time; per-edge
/// budgets come from `budget_of` (`None` entries inherit the configured
/// default, which `deadline` sets for the whole run).
fn run_paced(
    scenario: &'static str,
    edges: &[StreamEdge],
    pace: Duration,
    coalesce: usize,
    deadline: Option<Duration>,
    budget_us: u64,
    budget_of: impl Fn(usize) -> Option<Duration>,
) -> Sample {
    let service = spawn_service(coalesce, deadline);
    let probe = StallProbe::start();
    let started = Instant::now();
    let mut next = started;
    for (i, e) in edges.iter().enumerate() {
        // Sleep-based pacing: on a small machine the producer and the
        // worker share cores, and a spin-wait pacer would starve the
        // worker into multi-millisecond stalls that have nothing to do
        // with the scheduler. Sleep overshoot only slows the offered
        // rate, which the throughput column reports honestly.
        let now = Instant::now();
        if let Some(gap) = next.checked_duration_since(now) {
            std::thread::sleep(gap);
            next += pace;
        } else {
            // The pacer fell behind (sleep overshot by more than one
            // interval). Skip the missed arrivals instead of submitting
            // a catch-up burst — a burst measures the producer's own
            // scheduling hiccup as queue wait and poisons the tail.
            next = now + pace;
        }
        assert!(service.submit_with_budget(e.src, e.dst, e.raw, budget_of(i)));
    }
    let stats = drain_to(&service, edges.len() as u64);
    let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
    let sched_stall = probe.finish();
    let metrics = service.metrics();
    service.shutdown();
    Sample {
        scenario,
        budget_us,
        feasible: true,
        coalesce,
        edges: edges.len(),
        elapsed_us,
        sched_stall,
        stats,
        metrics,
    }
}

fn write_json(path: &str, edges: usize, samples: &[Sample]) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"frontier\",");
    let _ = writeln!(out, "  \"workload_edges\": {edges},");
    let _ = writeln!(out, "  \"samples\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"budget_us\": {}, \"feasible\": {}, \
             \"coalesce\": {}, \"edges\": {}, \"elapsed_us\": {:.1}, \
             \"throughput_eps\": {:.1}, \"deadline_miss\": {}, \
             \"sched_stall_ns\": {}, \
             \"queue_wait_p50_ns\": {}, \"queue_wait_p99_ns\": {}, \
             \"slack_p50_ns\": {}, \"batch_p99\": {}}}{comma}",
            s.scenario,
            s.budget_us,
            s.feasible,
            s.coalesce,
            s.edges,
            s.elapsed_us,
            s.throughput_eps(),
            s.stats.deadline_miss,
            s.sched_stall.as_nanos(),
            s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.50),
            s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.99),
            s.stage_q(metric_names::DEADLINE_SLACK_NS, 0.50),
            s.stage_q(metric_names::COALESCE_BATCH_SIZE, 0.99),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke") || std::env::var_os("SPADE_QUICK").is_some();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_frontier.json".to_string());

    let edges = workload(smoke);
    println!(
        "frontier bench: {} edges ({}), budgets swept per scenario\n",
        edges.len(),
        if smoke { "smoke" } else { "full" },
    );

    let budgets = [
        Duration::from_micros(200),
        Duration::from_millis(1),
        Duration::from_millis(5),
        Duration::from_millis(20),
    ];

    let mut samples = Vec::new();

    // Throughput ceiling reference, then the budget sweep under backlog.
    samples.push(run_bursty(&edges, None));
    for &b in &budgets {
        samples.push(run_bursty(&edges, Some(b)));
    }

    // Paced open-loop traffic: comfortably feasible offered load (the
    // drip cap keeps the paced runs shorter than the replay). The pace
    // must sit well under the worst-case per-edge service time (~55us on
    // a single shared core with the full workload's graph) — an
    // overloaded "paced" run measures backlog growth, not the scheduler,
    // and poisons the reference row the feasibility floor is cut from.
    let pace = Duration::from_micros(150);
    let drip_cap = edges.len().min(if smoke { 2_000 } else { 10_000 });
    let paced = &edges[..drip_cap];

    // Latency floor reference: per-edge, no budget. Its p99 queue wait
    // is the platform's dequeue-jitter floor — a budget below a few
    // multiples of it cannot be guaranteed by ANY scheduler on this
    // machine, so such points are reported but marked infeasible.
    let reference = run_paced("drip", paced, pace, 1, None, 0, |_| None);
    let jitter_floor =
        Duration::from_nanos(reference.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.99)) * 4;
    println!(
        "paced per-edge reference: p99 queue wait {:.1}us -> feasibility floor {:.1}us\n",
        jitter_floor.as_nanos() as f64 / 4e3,
        jitter_floor.as_nanos() as f64 / 1e3,
    );
    samples.push(reference);
    for &b in &budgets {
        let mut s = run_paced("drip", paced, pace, 256, Some(b), b.as_micros() as u64, |_| None);
        s.feasible = b >= jitter_floor && s.sched_stall < stall_tolerance(b);
        samples.push(s);
    }

    // Mixed per-transaction budgets: alternate tight/loose; the row is
    // keyed by the tight class since the batch boundary follows it.
    let loose = Duration::from_millis(20);
    for &t in &[Duration::from_millis(1), Duration::from_millis(5)] {
        let mut s = run_paced("mixed", paced, pace, 256, None, t.as_micros() as u64, move |i| {
            Some(if i % 2 == 0 { t } else { loose })
        });
        s.feasible = t >= jitter_floor && s.sched_stall < stall_tolerance(t);
        samples.push(s);
    }

    let mut table = Table::new([
        "scenario",
        "budget",
        "feasible",
        "edges",
        "tx/s",
        "q-wait p50",
        "q-wait p99",
        "misses",
        "stall max",
        "batch p99",
    ]);
    for s in &samples {
        table.row([
            s.scenario.to_string(),
            if s.budget_us == 0 {
                "none".to_string()
            } else {
                format!("{:.1}ms", s.budget_us as f64 / 1e3)
            },
            s.feasible.to_string(),
            s.edges.to_string(),
            format!("{:.0}", s.throughput_eps()),
            format!("{:.1}us", s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.50) as f64 / 1e3),
            format!("{:.1}us", s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.99) as f64 / 1e3),
            s.stats.deadline_miss.to_string(),
            format!("{:.1}us", s.sched_stall.as_nanos() as f64 / 1e3),
            s.stage_q(metric_names::COALESCE_BATCH_SIZE, 0.99).to_string(),
        ]);
    }
    table.print();

    // Feasible operating points serve every transaction inside its
    // budget — the zero-miss half of the frontier contract.
    for s in samples.iter().filter(|s| s.feasible && s.budget_us > 0) {
        assert_eq!(
            s.stats.deadline_miss, 0,
            "{} budget {}us: {} deadline misses under feasible load",
            s.scenario, s.budget_us, s.stats.deadline_miss
        );
    }

    match write_json(&out_path, edges.len(), &samples) {
        Ok(()) => println!("frontier written to {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
