//! Multi-core production shape: the sharded parallel detection runtime.
//!
//! A power-law marketplace stream with an injected fraud ring is routed
//! across N worker engines by the connectivity-aware partitioner, which
//! keeps each community's edges co-resident — so the shard that owns the
//! ring detects exactly what a single engine over the whole stream would,
//! while ingest spreads over all cores. A moderator polls the merged
//! global view and the per-shard statistics while ingest runs.
//!
//! Run with: `cargo run --release --example sharded_service`

use spade::core::WeightedDensity;
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};

fn main() {
    // A Zipf-distributed customer->merchant stream with labeled fraud
    // bursts injected near the end (the paper's evaluation protocol).
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 2_000,
        merchants: 600,
        transactions: 20_000,
        seed: 2024,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 250,
            amount: 400.0,
            ..Default::default()
        },
    );
    println!(
        "stream: {} transactions, {} labeled fraudulent",
        injected.edges.len(),
        injected.edges.iter().filter(|e| e.is_fraud()).count(),
    );

    // Communities stay co-resident; the benign giant component (this
    // marketplace is one connected blob) outgrows the spill bound and
    // hash-spreads across all shards, keeping load balanced while
    // fraud-sized components stay pinned.
    let config = ShardedConfig {
        shards: 4,
        strategy: PartitionStrategy::ConnectivityWithSpill { max_component: 512 },
        ..Default::default()
    };
    let service = ShardedSpadeService::spawn(WeightedDensity, config);
    println!(
        "spawned {} shard workers (connectivity partitioner, spill at 512)",
        service.num_shards()
    );

    for e in &injected.edges {
        service.submit(e.src, e.dst, e.raw);
    }
    service.flush();

    // A moderator polls the merged view without touching ingest.
    let fraud_accounts: std::collections::HashSet<u32> =
        injected.instances.iter().flat_map(|i| i.members.iter().map(|m| m.0)).collect();
    let mut global = service.current_detection();
    for _ in 0..400 {
        global = service.current_detection();
        if global.best.members.iter().any(|m| fraud_accounts.contains(&m.0)) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    println!(
        "moderator sees: shard {} holds {} members at density {:.1} ({} updates cluster-wide)",
        global.best_shard, global.best.size, global.best.density, global.total_updates,
    );

    for s in service.stats() {
        println!(
            "  shard {}: {} updates, queue depth {}, {} publishes, local detection {} @ {:.1}",
            s.shard,
            s.service.updates_applied,
            s.service.queue_depth,
            s.service.publishes,
            s.service.detection_size,
            s.service.detection_density,
        );
    }

    // Shutdown drains every shard; the final aggregate covers everything.
    let final_global = service.shutdown();
    assert_eq!(final_global.total_updates, injected.edges.len() as u64);
    let caught = final_global.best.members.iter().filter(|m| fraud_accounts.contains(&m.0)).count();
    println!(
        "final: densest community on shard {} with {} members (density {:.1}), {}/{} are labeled fraudsters",
        final_global.best_shard,
        final_global.best.size,
        final_global.best.density,
        caught,
        final_global.best.size,
    );
    assert!(caught > 0, "the injected ring must surface in the global view");
}
