//! Fraud detection during a time period (Appendix C.3).
//!
//! Given the peeling state for the graph generated during `[τs, τe]` and a
//! query window `[τs', τe']`, the detector reuses the state instead of
//! peeling the new window's graph from scratch. The paper's five cases
//! reduce to set algebra over the timestamp-sorted transaction log:
//!
//! * records in the new window but not the old one are **inserted**
//!   (Algorithm 2);
//! * records in the old window but not the new one are **deleted**
//!   (Appendix C.1, at transaction granularity);
//! * disjoint windows (Case 1) rebuild via one static peel, which is
//!   cheaper than deleting everything.
//!
//! Records carry pre-evaluated suspiciousness (`c`), since replaying
//! arrival-time-dependent metrics (FD's degree term) under out-of-order
//! window moves is not well-defined — see DESIGN.md §4.

use crate::engine::{SpadeConfig, SpadeEngine};
use crate::metric::WeightedDensity;
use crate::state::Detection;
use spade_graph::{GraphError, VertexId};

/// A transaction with pre-evaluated suspiciousness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowRecord {
    /// Paying side.
    pub src: VertexId,
    /// Receiving side.
    pub dst: VertexId,
    /// Suspiciousness weight `c > 0`.
    pub c: f64,
    /// Generation timestamp.
    pub ts: u64,
}

/// Which Appendix C.3 case a window move exercised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowMove {
    /// Case 1: disjoint — rebuilt from scratch.
    Rebuild,
    /// Cases 2–5: expressed as `inserted` + `deleted` record counts.
    Incremental {
        /// Records inserted (new window minus old).
        inserted: usize,
        /// Records deleted (old window minus new).
        deleted: usize,
    },
}

/// Sliding/jumping time-window detector over a transaction log.
#[derive(Debug)]
pub struct TimeWindowDetector {
    /// Timestamp-sorted transaction log.
    records: Vec<WindowRecord>,
    engine: SpadeEngine<WeightedDensity>,
    /// Current half-open record range `[lo, hi)` loaded into the engine.
    lo: usize,
    hi: usize,
}

impl TimeWindowDetector {
    /// Builds a detector over `records` (sorted internally by timestamp;
    /// ties keep input order). Starts with an empty window.
    pub fn new(mut records: Vec<WindowRecord>) -> Self {
        records.sort_by_key(|r| r.ts);
        TimeWindowDetector { records, engine: SpadeEngine::new(WeightedDensity), lo: 0, hi: 0 }
    }

    /// Number of records in the log.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// The engine holding the current window's graph.
    pub fn engine(&self) -> &SpadeEngine<WeightedDensity> {
        &self.engine
    }

    /// Moves the window to `[ts, te)` (half-open in timestamps) and
    /// returns the detection plus which maintenance path ran.
    pub fn detect_window(
        &mut self,
        ts: u64,
        te: u64,
    ) -> Result<(Detection, WindowMove), GraphError> {
        let new_lo = self.records.partition_point(|r| r.ts < ts);
        let new_hi = self.records.partition_point(|r| r.ts < te);
        let (new_lo, new_hi) = (new_lo, new_hi.max(new_lo));

        let disjoint = new_lo >= self.hi || new_hi <= self.lo || self.lo == self.hi;
        let mv = if disjoint {
            self.rebuild(new_lo, new_hi)?;
            WindowMove::Rebuild
        } else {
            let mut inserted = 0usize;
            let mut deleted = 0usize;
            // Head: extend (Case 2/4 insert E[s', s]) or shrink
            // (Case 3/5 delete E[s, s']).
            if new_lo < self.lo {
                inserted += self.insert_range(new_lo, self.lo)?;
            } else if new_lo > self.lo {
                deleted += self.delete_range(self.lo, new_lo)?;
            }
            // Tail: extend (Case 2/5 insert E[e, e']) or shrink
            // (Case 3/4 delete E[e', e]).
            if new_hi > self.hi {
                inserted += self.insert_range(self.hi, new_hi)?;
            } else if new_hi < self.hi {
                deleted += self.delete_range(new_hi, self.hi)?;
            }
            WindowMove::Incremental { inserted, deleted }
        };
        self.lo = new_lo;
        self.hi = new_hi;
        Ok((self.engine.detect(), mv))
    }

    fn rebuild(&mut self, lo: usize, hi: usize) -> Result<(), GraphError> {
        self.engine = SpadeEngine::bootstrap(
            WeightedDensity,
            SpadeConfig::default(),
            self.records[lo..hi].iter().map(|r| (r.src, r.dst, r.c)),
        )?;
        Ok(())
    }

    fn insert_range(&mut self, lo: usize, hi: usize) -> Result<usize, GraphError> {
        let batch: Vec<(VertexId, VertexId, f64)> =
            self.records[lo..hi].iter().map(|r| (r.src, r.dst, r.c)).collect();
        if !batch.is_empty() {
            self.engine.insert_batch_weighted(&batch)?;
        }
        Ok(batch.len())
    }

    fn delete_range(&mut self, lo: usize, hi: usize) -> Result<usize, GraphError> {
        for i in lo..hi {
            let r = self.records[i];
            self.engine.delete_transaction(r.src, r.dst, r.c)?;
        }
        Ok(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn log() -> Vec<WindowRecord> {
        // 20 transactions across 20 time units, with a dense burst in the
        // middle (ts 8..12 among vertices 10..13).
        let mut recs = Vec::new();
        for t in 0..8u64 {
            recs.push(WindowRecord {
                src: v(t as u32 % 5),
                dst: v((t as u32 + 1) % 5),
                c: 1.0 + t as f64,
                ts: t,
            });
        }
        let mut t = 8;
        for a in 10..13u32 {
            for b in 10..13u32 {
                if a != b {
                    recs.push(WindowRecord { src: v(a), dst: v(b), c: 8.0, ts: t });
                    t += 1;
                }
            }
        }
        for t in 14..20u64 {
            recs.push(WindowRecord {
                src: v(t as u32 % 7),
                dst: v((t as u32 + 2) % 7),
                c: 2.0,
                ts: t,
            });
        }
        recs
    }

    /// Oracle: bootstrap the window from scratch and compare.
    fn assert_matches_fresh(det: &TimeWindowDetector, ts: u64, te: u64, got: Detection) {
        let recs: Vec<_> = det.records.iter().filter(|r| r.ts >= ts && r.ts < te).collect();
        let fresh = SpadeEngine::bootstrap(
            WeightedDensity,
            SpadeConfig::default(),
            recs.iter().map(|r| (r.src, r.dst, r.c)),
        )
        .unwrap();
        let want = peel(fresh.graph());
        assert!(
            (got.density - want.best_density).abs() < 1e-9,
            "window [{ts},{te}): density {} vs fresh {}",
            got.density,
            want.best_density
        );
        // The maintained state must be a full greedy order of the window
        // graph (sequence equality demands equal vertex universes, which
        // incremental windows keep as supersets — so compare density and
        // validate greedy instead).
        det.engine.state().validate_greedy(det.engine.graph(), 1e-9);
    }

    #[test]
    fn case1_disjoint_rebuild() {
        let mut d = TimeWindowDetector::new(log());
        let (det1, mv1) = d.detect_window(0, 5).unwrap();
        assert_eq!(mv1, WindowMove::Rebuild);
        assert_matches_fresh(&d, 0, 5, det1);
        let (det2, mv2) = d.detect_window(8, 14).unwrap();
        assert_eq!(mv2, WindowMove::Rebuild);
        assert_matches_fresh(&d, 8, 14, det2);
        assert!(det2.density > det1.density, "dense burst must dominate");
    }

    #[test]
    fn case2_containing_window_inserts_both_sides() {
        let mut d = TimeWindowDetector::new(log());
        d.detect_window(8, 14).unwrap();
        let (det, mv) = d.detect_window(4, 18).unwrap();
        match mv {
            WindowMove::Incremental { inserted, deleted } => {
                assert!(inserted > 0);
                assert_eq!(deleted, 0);
            }
            other => panic!("expected incremental, got {other:?}"),
        }
        assert_matches_fresh(&d, 4, 18, det);
    }

    #[test]
    fn case3_contained_window_deletes_both_sides() {
        let mut d = TimeWindowDetector::new(log());
        d.detect_window(4, 18).unwrap();
        let (det, mv) = d.detect_window(8, 14).unwrap();
        match mv {
            WindowMove::Incremental { inserted, deleted } => {
                assert_eq!(inserted, 0);
                assert!(deleted > 0);
            }
            other => panic!("expected incremental, got {other:?}"),
        }
        assert_matches_fresh(&d, 8, 14, det);
    }

    #[test]
    fn case4_and_5_sliding_windows() {
        let mut d = TimeWindowDetector::new(log());
        d.detect_window(5, 12).unwrap();
        // Slide forward (Case 5: delete head, insert tail).
        let (det, mv) = d.detect_window(9, 16).unwrap();
        match mv {
            WindowMove::Incremental { inserted, deleted } => {
                assert!(inserted > 0 && deleted > 0);
            }
            other => panic!("expected incremental, got {other:?}"),
        }
        assert_matches_fresh(&d, 9, 16, det);
        // Slide backward (Case 4: insert head, delete tail).
        let (det, mv) = d.detect_window(6, 12).unwrap();
        assert!(matches!(mv, WindowMove::Incremental { .. }));
        assert_matches_fresh(&d, 6, 12, det);
    }

    #[test]
    fn randomized_window_moves_match_fresh_bootstrap() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5150);
        let mut d = TimeWindowDetector::new(log());
        for _ in 0..25 {
            let a = rng.gen_range(0..20u64);
            let b = rng.gen_range(a..=20u64);
            let (det, _) = d.detect_window(a, b).unwrap();
            assert_matches_fresh(&d, a, b, det);
        }
    }

    #[test]
    fn empty_window_is_harmless() {
        let mut d = TimeWindowDetector::new(log());
        let (det, _) = d.detect_window(100, 200).unwrap();
        assert_eq!(det.size, 0);
    }

    #[test]
    fn repeating_the_same_window_is_a_noop_move() {
        let mut d = TimeWindowDetector::new(log());
        let (det1, _) = d.detect_window(5, 15).unwrap();
        let (det2, mv) = d.detect_window(5, 15).unwrap();
        assert_eq!(mv, WindowMove::Incremental { inserted: 0, deleted: 0 });
        assert_eq!(det1.size, det2.size);
        assert!((det1.density - det2.density).abs() < 1e-12);
    }

    #[test]
    fn window_covering_everything_equals_full_bootstrap() {
        let mut d = TimeWindowDetector::new(log());
        d.detect_window(8, 12).unwrap();
        let (det, _) = d.detect_window(0, u64::MAX).unwrap();
        assert_matches_fresh(&d, 0, u64::MAX, det);
        assert_eq!(d.num_records(), 20);
    }

    #[test]
    fn shrink_to_empty_then_regrow() {
        let mut d = TimeWindowDetector::new(log());
        d.detect_window(0, 20).unwrap();
        let (det, _) = d.detect_window(9, 9).unwrap();
        assert_eq!(det.size, 0);
        let (det, _) = d.detect_window(8, 14).unwrap();
        assert_matches_fresh(&d, 8, 14, det);
    }
}
