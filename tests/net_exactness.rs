//! The network half of the `cross-shard-exactness` CI gate.
//!
//! N concurrent TCP producers replay a seeded injected-fraud workload
//! into a [`SpadeNetServer`] wrapped around the hash-routed sharded
//! runtime; the cross-shard repair pass must recover the **exact**
//! solo-engine answer — same members, same density — just as it does for
//! in-process ingest. The producers interleave arbitrarily, so this also
//! pins down that detection is a function of the final edge multiset,
//! not of arrival order.
//!
//! The second half is the back-pressure contract: with a tiny shard
//! queue and a fast producer, Busy replies must surface at both ends of
//! the wire, and **no acknowledged edge may be lost** — the sum of
//! producer-side acked counts equals the shards' applied-update total
//! and (on an all-unique-pairs workload) the resident edge count.

use spade::core::stream::StreamEdge;
use spade::core::{SpadeEngine, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::graph::VertexId;
use spade::net::{ClientConfig, SpadeNetClient, SpadeNetServer};
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The seeded dataset: identical to the in-process repair gate, so the
/// two halves of the CI job compare the same ground truth.
fn seeded_injected_stream() -> Vec<StreamEdge> {
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 600,
        merchants: 200,
        transactions: 6_000,
        seed: 0xC1_5EED,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 240,
            amount: 600.0,
            seed: 0xC1_5EED,
            ..Default::default()
        },
    );
    injected.edges
}

/// Solo-engine ground truth over the same stream.
fn solo_detection(edges: &[StreamEdge]) -> (usize, f64, Vec<u32>) {
    let mut solo = SpadeEngine::new(WeightedDensity);
    for e in edges {
        let _ = solo.insert_edge(e.src, e.dst, e.raw);
    }
    let det = solo.detect();
    let mut members: Vec<u32> = solo.community(det).iter().map(|m| m.0).collect();
    members.sort_unstable();
    (det.size, det.density, members)
}

/// Polls until every acknowledged edge has been applied by the shards.
fn drain(service: &ShardedSpadeService, acked: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.stats().iter().map(|s| s.service.updates_applied).sum::<u64>() < acked {
        assert!(Instant::now() < deadline, "drain timed out: an acknowledged edge was lost");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn assert_exact_with_producers(shards: usize, producers: usize) {
    let edges = seeded_injected_stream();
    let (want_size, want_density, want_members) = solo_detection(&edges);
    assert!(want_size > 0, "the seeded dataset must contain a detectable community");

    let service = Arc::new(ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards,
            queue_capacity: 4096,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        },
    ));
    let server = SpadeNetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // N producers, each replaying an interleaved slice of the stream
    // over its own TCP connection, pipelined and batched.
    let workers: Vec<_> = (0..producers)
        .map(|p| {
            let slice: Vec<(VertexId, VertexId, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % producers == p)
                .map(|(_, e)| (e.src, e.dst, e.raw))
                .collect();
            std::thread::spawn(move || {
                let mut client = SpadeNetClient::connect_with(
                    addr,
                    ClientConfig { batch: 64, pipeline: 8, ..Default::default() },
                )
                .expect("producer connect");
                for (src, dst, raw) in slice {
                    client.submit(src, dst, raw).expect("submit");
                }
                client.finish().expect("flush")
            })
        })
        .collect();
    let acked: u64 = workers.into_iter().map(|w| w.join().expect("producer").edges_acked).sum();
    assert_eq!(acked, edges.len() as u64, "every edge must be acknowledged");

    // Every acked edge sits in a shard queue; the repair pass drains the
    // queues (region requests ride the same FIFO), so the repaired
    // snapshot covers the whole stream.
    drain(&service, acked);
    let repaired = service.repair();

    // The premise: hash routing across TCP producers still dilutes.
    assert!(
        repaired.baseline_density < want_density * (1.0 - 1e-9),
        "N={shards}/P={producers}: expected dilution, got baseline {} vs solo {}",
        repaired.baseline_density,
        want_density
    );

    // The gate: server-fed repaired detection == solo, members + density.
    let got: Vec<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
    assert_eq!(
        got, want_members,
        "N={shards}/P={producers}: repaired members diverge from the solo engine"
    );
    assert_eq!(repaired.detection.size, want_size, "N={shards}/P={producers}: size mismatch");
    assert!(
        (repaired.detection.density - want_density).abs() < 1e-9,
        "N={shards}/P={producers}: repaired density {} vs solo {}",
        repaired.detection.density,
        want_density
    );

    let net = server.shutdown();
    assert_eq!(net.connections, producers as u64);
    assert_eq!(net.edges_accepted, acked);
    assert_eq!(net.malformed_frames, 0);

    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    let global = service.shutdown();
    assert_eq!(global.total_updates, edges.len() as u64);
    println!(
        "N={shards}/P={producers}: {} edges over TCP, diluted {:.3} repaired to {:.3} \
         (solo {:.3}, {} members, {} busy replies)",
        acked,
        repaired.baseline_density,
        repaired.detection.density,
        want_density,
        want_size,
        net.busy_replies,
    );
}

#[test]
fn four_tcp_producers_feed_2_shards_to_solo_exactness() {
    assert_exact_with_producers(2, 4);
}

#[test]
fn four_tcp_producers_feed_4_shards_to_solo_exactness() {
    assert_exact_with_producers(4, 4);
}

#[test]
fn six_tcp_producers_feed_8_shards_to_solo_exactness() {
    assert_exact_with_producers(8, 6);
}

#[test]
fn back_pressure_surfaces_busy_and_loses_no_acknowledged_edge() {
    // A deliberately tiny shard queue with strict per-edge processing:
    // the worker is slow, the producer is fast and deeply pipelined, so
    // edges MUST bounce — and every acknowledged one must still land.
    let service = Arc::new(ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards: 2,
            queue_capacity: 2,
            coalesce: 1,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        },
    ));
    let server = SpadeNetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = SpadeNetClient::connect_with(
        server.local_addr(),
        ClientConfig {
            batch: 16,
            pipeline: 16,
            busy_backoff: Duration::from_micros(50),
            ..Default::default()
        },
    )
    .expect("connect");

    // All-unique directed pairs (i -> i + 1000 + i): the resident edge
    // count equals the applied count, so graph-level accounting is
    // checkable too.
    let total = 3_000u32;
    for i in 0..total {
        client.submit(VertexId(i), VertexId(i + 10_000), 1.0 + (i % 13) as f64).expect("submit");
    }
    let stats = client.finish().expect("flush");
    assert_eq!(stats.edges_submitted, total as u64);
    assert_eq!(stats.edges_acked, total as u64, "flush must retry Busy suffixes to completion");
    assert!(stats.busy_replies > 0, "a 2-slot queue under a pipelined producer must bounce");

    let net_stats = server.stats();
    assert!(net_stats.busy_replies > 0);
    assert_eq!(net_stats.edges_accepted, total as u64);

    // No acknowledged edge is dropped: the shards apply exactly the
    // acked count...
    drain(&service, stats.edges_acked);
    let applied: u64 = service.stats().iter().map(|s| s.service.updates_applied).sum();
    assert_eq!(applied, stats.edges_acked);
    // ...and on this all-unique-pairs workload, every one is resident in
    // an engine graph.
    let resident: u64 = service.stats().iter().map(|s| s.service.edges_resident).sum();
    assert_eq!(resident, stats.edges_acked, "acked-edge count == engine edge count");

    server.shutdown();
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    let global = service.shutdown();
    assert_eq!(global.total_updates, total as u64);
}
