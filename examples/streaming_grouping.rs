//! Edge grouping in action (paper §4.3): replay a labeled fraud stream
//! through the grouping buffer and measure queueing time, latency, and the
//! prevention ratio — the quantities behind Fig. 8, Fig. 9a and Table 5.
//!
//! Run with: `cargo run --release --example streaming_grouping`

use spade::core::{EdgeGrouper, GroupingConfig, SpadeEngine, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::metrics::{LatencyRecorder, PreventionTracker};
use std::collections::HashMap;

fn main() {
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 2_000,
        merchants: 600,
        transactions: 20_000,
        seed: 4,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 150,
            amount: 400.0,
            inject_after_fraction: 0.5,
            ..Default::default()
        },
    );

    // Map each account to its fraud instance for detection attribution.
    let mut account_instance: HashMap<u32, u32> = HashMap::new();
    for info in &injected.instances {
        for m in &info.members {
            account_instance.insert(m.0, info.instance);
        }
    }

    let mut engine = SpadeEngine::new(WeightedDensity);
    let mut grouper = EdgeGrouper::new(GroupingConfig::default());
    let mut latency = LatencyRecorder::new();
    let mut prevention = PreventionTracker::new();

    let mut pending: Vec<(u64, bool)> = Vec::new(); // (generated_ts, fraud)
    for e in &injected.edges {
        if let Some(label) = e.label {
            prevention.note_transaction(label.instance, e.timestamp);
        }
        pending.push((e.timestamp, e.is_fraud()));
        let outcome = grouper.submit(&mut engine, e.src, e.dst, e.raw).expect("valid edge");
        if outcome.flushed.is_some() {
            // Everything queued so far is now responded to at this
            // stream timestamp (simulated clock: response == flush time).
            for (generated, _fraud) in pending.drain(..) {
                latency.record(generated, e.timestamp, e.timestamp);
            }
            // Attribute the detection to fraud instances whose accounts
            // appear in the detected community.
            let det = engine.cached_detection();
            for member in engine.community(det) {
                if let Some(&inst) = account_instance.get(&member.0) {
                    prevention.note_detection(inst, e.timestamp);
                }
            }
        }
    }
    grouper.flush(&mut engine).expect("flush");

    let stats = grouper.stats();
    println!("edge grouping over {} transactions:", stats.submitted);
    println!(
        "  urgent: {} ({:.2}%)",
        stats.urgent,
        100.0 * stats.urgent as f64 / stats.submitted as f64
    );
    println!(
        "  flushes: {}, avg batch {:.1}",
        stats.flushes,
        stats.flushed_edges as f64 / stats.flushes.max(1) as f64
    );
    println!(
        "  mean latency {:.0} stream-us over {} responded transactions ({:.2}% of it queueing)",
        latency.mean(),
        latency.count(),
        100.0 * latency.queueing_fraction()
    );
    println!(
        "  prevention: {}/{} instances detected, overall ratio R = {:.2}%",
        prevention.num_detected(),
        prevention.num_instances(),
        100.0 * prevention.overall_ratio()
    );
    assert!(prevention.num_detected() > 0, "at least one instance must be caught");
}
