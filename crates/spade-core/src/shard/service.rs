//! The sharded parallel detection runtime.
//!
//! [`ShardedSpadeService`] fans the single-engine worker loop of
//! [`crate::service`] out across N shards: a [`Partitioner`] routes each
//! arriving transaction to one shard, every shard runs a full
//! [`SpadeEngine`] (plus optional §4.3 edge grouping) behind its own
//! bounded ingest queue on its own thread, and a [`DetectionAggregator`]
//! merges the per-shard snapshots into a global densest-community view on
//! every read.
//!
//! With the connectivity partitioner (the default), a community whose
//! component is born and stays on one home shard has all of its edges
//! co-resident, so that shard detects exactly what a single engine over
//! the whole stream would — while benign traffic spreads across all
//! cores. Exactness is *per component home*: edges routed before two
//! already-homed components merge stay on their original shards (no
//! migration — see `shard::partition`), and components that outgrow the
//! spill bound hash-spread. Shutdown fans out: every queue is drained,
//! every grouper flushed, every worker joined, and the final aggregate
//! reflects every submitted transaction.

use crate::engine::SpadeEngine;
use crate::grouping::GroupingConfig;
use crate::metric::DensityMetric;
use crate::service::{
    CandidateRegion, IngestConfig, MigrationSlice, PublishedDetection, ServiceStats, SpadeService,
    TrySubmit,
};
use crate::shard::aggregate::{DetectionAggregator, GlobalDetection};
use crate::shard::migrate::{
    pick_load_move, pick_load_moves, MigrationPolicy, MigrationRecord, MigrationReport,
    MigrationStats, MigrationTrigger,
};
use crate::shard::partition::{HashPartitioner, PartitionStrategy, Partitioner};
use crate::shard::repair::{
    repair_regions, RepairConfig, RepairOutcome, RepairScratch, RepairStats, RepairedDetection,
};
use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock};
use spade_graph::hash::FxHashSet;
use spade_graph::VertexId;
use spade_metrics::runtime::{EventKind, Histogram, MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Registry names of the runtime-level (cross-shard) metrics, alongside
/// the per-worker names in [`crate::service::metric_names`].
pub mod metric_names {
    /// Histogram: wall time of one full repair pass (export → union →
    /// re-peel → publish), nanoseconds.
    pub const REPAIR_PASS_NS: &str = "spade_repair_pass_ns";
    /// Histogram: wall time of one completed component move (await
    /// evicted slice → replay into target), nanoseconds.
    pub const MIGRATION_MOVE_NS: &str = "spade_migration_move_ns";
    /// Gauge: number of worker shards.
    pub const SHARDS: &str = "spade_shards";
}

/// Configuration of the sharded runtime.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Number of worker shards (engines/threads). Minimum 1.
    pub shards: usize,
    /// Per-shard ingest queue bound (back-pressure per shard).
    pub queue_capacity: usize,
    /// Per-shard drain-coalescing cap: how many queued commands a shard
    /// worker applies per wake-up as one batch (one reorder pass, one
    /// publish). `1` means strict per-edge processing; see
    /// [`IngestConfig::coalesce`].
    pub coalesce: usize,
    /// Default per-transaction detection-latency budget applied inside
    /// every shard worker; see [`IngestConfig::deadline`]. `None` keeps
    /// the plain drain-coalesce scheduler.
    pub deadline: Option<Duration>,
    /// Edge-grouping configuration applied inside every shard.
    pub grouping: Option<GroupingConfig>,
    /// Edge-to-shard routing policy.
    pub strategy: PartitionStrategy,
    /// Ranked shard entries kept in each [`GlobalDetection`].
    pub top_k: usize,
    /// Cross-shard repair tuning (frontier radius, staleness budget).
    pub repair: RepairConfig,
    /// Migration scheduler tuning (strand repair + load balancing).
    pub migration: MigrationPolicy,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        let ingest = IngestConfig::default();
        ShardedConfig {
            shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8),
            queue_capacity: ingest.queue_capacity,
            coalesce: ingest.coalesce,
            deadline: ingest.deadline,
            grouping: None,
            strategy: PartitionStrategy::default(),
            top_k: 4,
            repair: RepairConfig::default(),
            migration: MigrationPolicy::default(),
        }
    }
}

impl ShardedConfig {
    /// A config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig { shards: shards.max(1), ..Default::default() }
    }
}

/// Point-in-time statistics of one shard: the shard index plus its
/// worker's [`ServiceStats`] (queue depth, counters, detection
/// descriptor).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The shard worker's service statistics.
    pub service: ServiceStats,
}

/// Outcome of one [`ShardedSpadeService::submit_batch`] call.
///
/// `accepted` counts the frame-order *prefix* of the batch that was
/// enqueued: the walk stops at the first edge whose destination shard has
/// no free queue slot, so a producer can retry `edges[accepted..]`
/// verbatim without reordering or double-inserting anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchSubmit {
    /// Edges enqueued — always a frame-order prefix of the input.
    pub accepted: usize,
    /// `true` when some destination shard had shut down; the accepted
    /// count is then unreliable (the runtime is going away regardless).
    pub closed: bool,
    /// How many of the accepted edges each shard received.
    pub shard_counts: Vec<usize>,
}

/// Handle to a running sharded detection runtime. Each shard is a full
/// [`SpadeService`] (engine + bounded queue + worker thread); this type
/// adds routing and aggregation on top.
pub struct ShardedSpadeService {
    shards: Vec<SpadeService>,
    router: Router,
    aggregator: DetectionAggregator,
    repair_config: RepairConfig,
    migration_policy: MigrationPolicy,
    /// Migration scheduler state; the mutex also serializes rebalance
    /// passes (one component move sequence at a time).
    migration: Mutex<MigrationState>,
    /// Repair scheduler state (scratch engine, counters, freshness
    /// markers). One pass runs at a time; pollers that find the state
    /// fresh are answered from `repaired` without taking this lock long.
    repair: Mutex<RepairState>,
    /// The published repaired snapshot: swapped whole on change (members
    /// behind an `Arc`, cloned by pointer), read lock-briefly by any
    /// number of moderators.
    repaired: RwLock<RepairedDetection>,
    /// Runtime-level registry (repair/migration pass durations, event
    /// trace); [`metrics`](Self::metrics) merges it with every shard's
    /// per-worker registry.
    registry: Arc<MetricsRegistry>,
    /// Pre-resolved handle: repair pass wall time.
    repair_pass_ns: Arc<Histogram>,
    /// Pre-resolved handle: completed component-move wall time.
    migration_move_ns: Arc<Histogram>,
}

/// Mutable state of the migration scheduler.
#[derive(Default)]
struct MigrationState {
    stats: MigrationStats,
    /// Per-shard `updates_applied` snapshot taken the last time the load
    /// trigger fired. The trigger compares traffic *since then* — a
    /// cumulative counter would keep re-flagging a shard that was hot
    /// once, long after its component moved away.
    load_baseline: Vec<u64>,
}

impl MigrationState {
    /// Per-shard traffic since the load trigger last fired.
    fn load_window(&self, updates: &[u64]) -> Vec<u64> {
        updates
            .iter()
            .enumerate()
            .map(|(i, &u)| u.saturating_sub(self.load_baseline.get(i).copied().unwrap_or(0)))
            .collect()
    }
}

/// Mutable state of the repair scheduler.
struct RepairState {
    scratch: RepairScratch,
    stats: RepairStats,
    /// Per-shard `(epoch, updates_applied)` observed at the last
    /// scheduler decision — unchanged shards mean a cached answer.
    seen: Vec<(u64, u64)>,
    /// Total updates consumed when the last full pass ran (staleness
    /// budget accounting).
    last_pass_updates: u64,
    /// Monotone epoch of the published repaired snapshot.
    epoch: u64,
}

impl RepairState {
    fn new() -> Self {
        RepairState {
            scratch: RepairScratch::new(),
            stats: RepairStats::default(),
            seen: Vec::new(),
            last_pass_updates: 0,
            epoch: 0,
        }
    }
}

/// `true` when any vertex appears in two different shards' published
/// member lists — the signature of a community split by hash routing.
fn members_overlap(snapshots: &[PublishedDetection]) -> bool {
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    for det in snapshots {
        for m in det.members.iter() {
            if !seen.insert(m.0) {
                return true;
            }
        }
    }
    false
}

/// Walks `edges` in frame order, routing each onto its shard group while
/// one virtual queue slot per edge remains: stops at the FIRST edge whose
/// shard has no free slot, so the accepted set is a strict frame-order
/// prefix (shared by both router arms of
/// [`ShardedSpadeService::submit_batch`]). Returns the accepted count.
fn fill_groups(
    edges: &[(VertexId, VertexId, f64)],
    route: &mut dyn FnMut(VertexId, VertexId) -> usize,
    free: &mut [usize],
    groups: &mut [Vec<(VertexId, VertexId, f64)>],
) -> usize {
    let mut accepted = 0;
    for &(src, dst, raw) in edges {
        let shard = route(src, dst);
        if free[shard] == 0 {
            break;
        }
        free[shard] -= 1;
        groups[shard].push((src, dst, raw));
        accepted += 1;
    }
    accepted
}

/// The routing fast path: stateless policies route lock-free; stateful
/// ones (union-find) serialize behind a mutex.
enum Router {
    /// Lock-free hash-by-source.
    Hash(HashPartitioner),
    /// Any stateful [`Partitioner`].
    Locked(Mutex<Box<dyn Partitioner>>),
}

impl Router {
    fn new(strategy: PartitionStrategy) -> Self {
        match strategy {
            PartitionStrategy::HashBySource => Router::Hash(HashPartitioner),
            other => Router::Locked(Mutex::new(other.build())),
        }
    }

    /// The routing table behind a stateful policy, or `None` for the
    /// lock-free hash path (which has no table to rebalance).
    fn table(&self) -> Option<parking_lot::MutexGuard<'_, Box<dyn Partitioner>>> {
        match self {
            Router::Hash(_) => None,
            Router::Locked(p) => Some(p.lock()),
        }
    }
}

impl ShardedSpadeService {
    /// Spawns `config.shards` worker engines built by `factory` (called
    /// once per shard index — use it to pre-bootstrap shards from
    /// snapshots or to vary per-shard configuration).
    pub fn spawn_with<M, F>(config: ShardedConfig, mut factory: F) -> Self
    where
        M: DensityMetric + Send + 'static,
        F: FnMut(usize) -> SpadeEngine<M>,
    {
        let num_shards = config.shards.max(1);
        let mut shards = Vec::with_capacity(num_shards);
        let ingest = IngestConfig {
            queue_capacity: config.queue_capacity,
            coalesce: config.coalesce,
            deadline: config.deadline,
        };
        for shard in 0..num_shards {
            shards.push(SpadeService::spawn_with(
                factory(shard),
                config.grouping,
                ingest,
                format!("spade-shard-{shard}"),
            ));
        }
        let registry = Arc::new(MetricsRegistry::new());
        let repair_pass_ns = registry.histogram(metric_names::REPAIR_PASS_NS);
        let migration_move_ns = registry.histogram(metric_names::MIGRATION_MOVE_NS);
        ShardedSpadeService {
            shards,
            router: Router::new(config.strategy),
            aggregator: DetectionAggregator::new(config.top_k.max(1)),
            repair_config: config.repair,
            migration_policy: config.migration,
            migration: Mutex::new(MigrationState::default()),
            repair: Mutex::new(RepairState::new()),
            repaired: RwLock::new(RepairedDetection::default()),
            registry,
            repair_pass_ns,
            migration_move_ns,
        }
    }

    /// Spawns the runtime with one empty engine per shard sharing the
    /// given metric.
    pub fn spawn<M>(metric: M, config: ShardedConfig) -> Self
    where
        M: DensityMetric + Clone + Send + 'static,
    {
        Self::spawn_with(config, |_| SpadeEngine::new(metric.clone()))
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Routes one transaction and hands its destination [`SpadeService`]
    /// to `enqueue` — the single copy of the route-then-submit protocol
    /// that [`submit`](Self::submit), [`try_submit`](Self::try_submit)
    /// and [`submit_batch`](Self::submit_batch) all share.
    ///
    /// For stateful routing the table lock is held ACROSS the enqueue,
    /// not just the lookup: the migration scheduler takes the same lock
    /// to rehome a component and stage its eviction marker, so an edge
    /// routed before a rehome is guaranteed to sit in its shard's queue
    /// ahead of the marker — in-flight edges always drain into the
    /// migrated slice instead of landing on an evicted shard. Re-running
    /// `route` for the same edge on a later retry is safe — the union is
    /// idempotent and no duplicate strand event is recorded (the
    /// endpoints already share a root) — at worst the load heuristic
    /// counts a retried edge twice, nudging new pins away from the
    /// congested shard. (No deadlock: workers drain their queues without
    /// ever taking this lock.)
    fn route_one<R>(
        &self,
        src: VertexId,
        dst: VertexId,
        enqueue: impl FnOnce(&SpadeService) -> R,
    ) -> R {
        match &self.router {
            // `HashPartitioner::route` takes `&mut self` to satisfy the
            // trait but touches no state; a copy keeps this lock-free.
            Router::Hash(p) => {
                let mut p = *p;
                let shard = p.route(src, dst, self.shards.len());
                enqueue(&self.shards[shard])
            }
            Router::Locked(p) => {
                let mut table = p.lock();
                let shard = table.route(src, dst, self.shards.len());
                enqueue(&self.shards[shard])
            }
        }
    }

    /// Routes one transaction to its shard and enqueues it; blocks when
    /// that shard's queue is full (per-shard back-pressure). Returns
    /// `false` if the runtime has shut down.
    pub fn submit(&self, src: VertexId, dst: VertexId, raw: f64) -> bool {
        match &self.router {
            Router::Hash(_) => self.route_one(src, dst, |shard| shard.submit(src, dst, raw)),
            // Under stateful routing the enqueue is NON-blocking: a full
            // shard queue releases the routing lock, waits, and
            // re-routes, so one back-pressured shard never
            // head-of-line-blocks producers bound for idle shards.
            Router::Locked(_) => loop {
                match self.route_one(src, dst, |shard| shard.try_submit(src, dst, raw)) {
                    TrySubmit::Queued => return true,
                    TrySubmit::Closed => return false,
                    TrySubmit::Full => {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            },
        }
    }

    /// Non-blocking [`submit`](Self::submit): routes the transaction and
    /// enqueues it only if its shard's queue has space right now,
    /// reporting [`TrySubmit::Full`] otherwise. Transport front ends
    /// (`spade-net`) surface `Full` to the producer as a Busy reply —
    /// back-pressure crosses the wire instead of stalling a connection
    /// handler thread. Re-routing the same edge on a later retry is safe:
    /// the union is idempotent and no duplicate strand event is recorded
    /// (see [`route_one`](Self::route_one)).
    pub fn try_submit(&self, src: VertexId, dst: VertexId, raw: f64) -> TrySubmit {
        self.route_one(src, dst, |shard| shard.try_submit(src, dst, raw))
    }

    /// Routes a whole decoded batch by destination shard and enqueues
    /// one grouped command per shard — one route pass and one channel
    /// operation per shard per batch, instead of a route + `try_submit`
    /// round trip per edge.
    ///
    /// Admission is a free-slot precheck against each shard's
    /// edge-denominated queue headroom ([`SpadeService::queue_free`]),
    /// taken before anything is enqueued: the walk stops at the first
    /// edge whose shard has no slot left, so the accepted set is always
    /// a frame-order prefix and a producer can retry `edges[accepted..]`
    /// without double-inserting (the Busy contract `spade-net` exposes).
    /// Under stateful routing both the routing pass and the enqueues
    /// happen under the table lock, preserving the marker-ordering
    /// guarantee documented on [`route_one`](Self::route_one); the
    /// precheck keeps those enqueues from blocking under the lock in the
    /// single-producer case (concurrent producers may still ride the
    /// shard's own back-pressure briefly).
    ///
    /// `budget` overrides the configured default detection-latency
    /// budget for every edge in the batch; `None` inherits the default.
    pub fn submit_batch(
        &self,
        edges: &[(VertexId, VertexId, f64)],
        budget: Option<Duration>,
    ) -> BatchSubmit {
        let num_shards = self.shards.len();
        if edges.is_empty() {
            return BatchSubmit { accepted: 0, closed: false, shard_counts: vec![0; num_shards] };
        }
        let mut groups: Vec<Vec<(VertexId, VertexId, f64)>> = vec![Vec::new(); num_shards];
        match &self.router {
            Router::Hash(p) => {
                let mut p = *p;
                let mut free: Vec<usize> = self.shards.iter().map(|s| s.queue_free()).collect();
                let accepted = fill_groups(
                    edges,
                    &mut |src, dst| p.route(src, dst, num_shards),
                    &mut free,
                    &mut groups,
                );
                let (shard_counts, closed) = self.enqueue_groups(groups, budget);
                BatchSubmit { accepted, closed, shard_counts }
            }
            Router::Locked(p) => {
                let mut table = p.lock();
                // Snapshot free slots under the lock: all producers to a
                // stateful router serialize here, so the snapshot cannot
                // be raced by another batch.
                let mut free: Vec<usize> = self.shards.iter().map(|s| s.queue_free()).collect();
                let accepted = fill_groups(
                    edges,
                    &mut |src, dst| table.route(src, dst, num_shards),
                    &mut free,
                    &mut groups,
                );
                let (shard_counts, closed) = self.enqueue_groups(groups, budget);
                BatchSubmit { accepted, closed, shard_counts }
            }
        }
    }

    /// Enqueues each non-empty per-shard group as one grouped command.
    /// Returns the per-shard accepted counts and whether any destination
    /// shard had shut down.
    fn enqueue_groups(
        &self,
        groups: Vec<Vec<(VertexId, VertexId, f64)>>,
        budget: Option<Duration>,
    ) -> (Vec<usize>, bool) {
        let mut closed = false;
        let mut shard_counts = Vec::with_capacity(groups.len());
        for (shard, group) in groups.into_iter().enumerate() {
            shard_counts.push(group.len());
            if !group.is_empty() && !self.shards[shard].submit_batch(group, budget) {
                closed = true;
            }
        }
        (shard_counts, closed)
    }

    /// Asks every shard to flush buffered benign edges. Returns `false`
    /// if any shard has shut down.
    pub fn flush(&self) -> bool {
        self.shards.iter().all(|s| s.flush())
    }

    /// The merged global detection across all shards (densest community
    /// wins), computed from each shard's latest snapshot.
    pub fn current_detection(&self) -> GlobalDetection {
        self.aggregator.merge(self.shards.iter().map(|s| s.current_detection()).collect())
    }

    /// One shard's latest published detection.
    pub fn shard_detection(&self, shard: usize) -> PublishedDetection {
        self.shards[shard].current_detection()
    }

    /// Per-shard statistics: queue depth, updates applied, flush and
    /// publish counts, current detection descriptor.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardStats { shard, service: s.stats() })
            .collect()
    }

    /// Time since the runtime was spawned.
    pub fn uptime(&self) -> std::time::Duration {
        self.registry.uptime()
    }

    /// The merged observability view: every shard's per-worker registry
    /// (per-stage latency histograms, counters, event traces) summed
    /// bucket-wise with the runtime-level registry (repair/migration
    /// pass durations), plus the repair and migration subsystem counters
    /// re-expressed as registry series. Histogram counts reconcile with
    /// the drain accounting — at quiesce, the merged
    /// `spade_stage_queue_wait_ns` count equals the summed
    /// `updates_applied` across shards, because every insert is timed
    /// through its queue exactly once.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = self.registry.snapshot();
        for shard in &self.shards {
            merged = merged.merge(&shard.metrics());
        }
        merged.gauges.insert(metric_names::SHARDS.into(), self.shards.len() as u64);
        let repair = self.repair.lock().stats;
        let migration = self.migration.lock().stats;
        for (name, value) in [
            ("spade_repair_passes_total", repair.repairs),
            ("spade_repair_regions_exported_total", repair.regions_exported),
            ("spade_repair_groups_merged_total", repair.groups_merged),
            ("spade_repair_published_total", repair.published),
            ("spade_repair_served_cached_total", repair.served_cached),
            ("spade_repair_corrupt_regions_total", repair.corrupt_regions),
            ("spade_migration_passes_total", migration.passes),
            ("spade_migrations_total", migration.migrations),
            ("spade_migration_strand_repairs_total", migration.strand_repairs),
            ("spade_migration_load_moves_total", migration.load_moves),
            ("spade_migration_edges_moved_total", migration.edges_moved),
            ("spade_migration_failed_moves_total", migration.failed_moves),
            ("spade_migration_skipped_empty_total", migration.skipped_empty),
        ] {
            merged.counters.insert(name.into(), value);
        }
        merged
    }

    /// Forces a cross-shard repair pass now: every shard exports its
    /// candidate region (community + `RepairConfig::hops` frontier,
    /// serialized through the persist subgraph codec), regions sharing
    /// members are unioned and re-peeled through the scratch engine, and
    /// the repaired snapshot — density provably ≥ the best per-shard
    /// detection — is published and returned. Blocks until every shard
    /// has drained the submissions that preceded this call (region
    /// requests ride the same FIFO queues as transactions).
    pub fn repair(&self) -> RepairedDetection {
        let mut state = self.repair.lock();
        self.run_repair(&mut state)
    }

    /// The scheduled entry point: answers from the cached repaired
    /// snapshot while no shard has published anything new; publishes the
    /// best per-shard view (no export) when detections changed but
    /// nothing overlaps; and runs a full repair pass when per-shard
    /// member sets overlap — the split-community signature — or the
    /// staleness budget (`RepairConfig::staleness_budget` ingest
    /// commands) has been exhausted since the last pass.
    pub fn repaired_detection(&self) -> RepairedDetection {
        let mut state = self.repair.lock();
        let snapshots: Vec<PublishedDetection> =
            self.shards.iter().map(|s| s.current_detection()).collect();
        let changed = state.seen.len() != snapshots.len()
            || snapshots
                .iter()
                .zip(&state.seen)
                .any(|(d, &(epoch, updates))| d.epoch != epoch || d.updates_applied != updates);
        if !changed {
            state.stats.served_cached += 1;
            return self.repaired.read().clone();
        }
        let total: u64 = snapshots.iter().map(|d| d.updates_applied).sum();
        let stale =
            total.saturating_sub(state.last_pass_updates) >= self.repair_config.staleness_budget;
        if !stale && !members_overlap(&snapshots) {
            // Disjoint detections: the best per-shard view needs no
            // merging; publish it without exporting a single region.
            state.seen = snapshots.iter().map(|d| (d.epoch, d.updates_applied)).collect();
            let (best_shard, best) = snapshots
                .iter()
                .enumerate()
                .max_by(|(i, a), (j, b)| a.density.total_cmp(&b.density).then(j.cmp(i)))
                .map(|(i, d)| (i, d.clone()))
                .unwrap_or_default();
            let baseline = best.density;
            return self.publish_repaired(
                &mut state,
                RepairOutcome {
                    members: best.members.to_vec(),
                    size: best.size,
                    density: best.density,
                    baseline_density: baseline,
                    baseline_shard: best_shard,
                    ..RepairOutcome::default()
                },
                total,
            );
        }
        self.run_repair(&mut state)
    }

    /// Counters of the repair subsystem.
    pub fn repair_stats(&self) -> RepairStats {
        self.repair.lock().stats
    }

    /// Counters of the migration subsystem.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migration.lock().stats
    }

    /// The partitioner's routing-table revision: bumped on every rehome
    /// or shard-count clamp. Stateless (hash) routing stays at 0.
    pub fn routing_epoch(&self) -> u64 {
        self.router.table().map(|p| p.routing_epoch()).unwrap_or(0)
    }

    /// Runs one migration pass now (see `crate::shard::migrate`): every
    /// pending strand event moves the losing component slice onto its
    /// surviving home, then up to
    /// [`MigrationPolicy::max_load_moves`] load-balancing moves shed the
    /// largest pinned component of any shard running ahead of the
    /// configured imbalance ratio. Blocks until the involved shards have
    /// drained the submissions that preceded each move (migration
    /// markers ride the same FIFO queues as transactions). A no-op — and
    /// cheap — under stateless hash routing, which has no routing table
    /// to update.
    pub fn rebalance(&self) -> MigrationReport {
        let mut state = self.migration.lock();
        state.stats.passes += 1;
        let mut report = MigrationReport::default();
        let num_shards = self.shards.len();

        // Strand repairs: correctness fixes, never capped. The events
        // were recorded at merge time; traffic for these components has
        // been flowing to the surviving home ever since, so the stranded
        // slice is stable and the eviction marker needs no routing lock
        // — FIFO order alone guarantees it trails every stranded edge.
        let events = match self.router.table() {
            Some(mut table) => table.drain_strands(num_shards),
            None => Vec::new(),
        };
        for event in events {
            let staged = {
                let Some(mut table) = self.router.table() else { break };
                let Some(home) = table.home_of(event.member) else { continue };
                if home == event.stranded_shard || home >= num_shards {
                    continue;
                }
                let members: Arc<[VertexId]> = table.component_members(event.member).into();
                drop(table);
                self.shards[event.stranded_shard].request_migrate_out(members).map(|rx| (home, rx))
            };
            let Some((home, rx)) = staged else { continue };
            self.complete_move(
                MigrationTrigger::StrandRepair,
                event.member,
                event.stranded_shard,
                home,
                rx,
                &mut state.stats,
                &mut report,
            );
        }

        // Load balancing: shed the largest pinned component of every
        // shard whose traffic *since the last load move* runs ahead of
        // the imbalance ratio. The whole multi-move plan comes from ONE
        // observation of the windowed counters (`pick_load_moves`) and
        // is staged under ONE routing-lock session — every rehome and
        // eviction marker lands before the lock drops, so all the
        // pass's moves split in-flight edges against a single
        // consistent routing epoch instead of re-observing (and
        // re-waiting a full window) between moves.
        let stats: Vec<ServiceStats> = self.shards.iter().map(|s| s.stats()).collect();
        let updates: Vec<u64> = stats.iter().map(|s| s.updates_applied).collect();
        let resident: Vec<u64> = stats.iter().map(|s| s.edges_resident).collect();
        let window = state.load_window(&updates);
        let plan = pick_load_moves(&window, &resident, &self.migration_policy);
        if !plan.is_empty() {
            // Acknowledge the signal whether or not the moves
            // materialize: the window restarts here, so a shard that
            // was hot once (or has nothing pinned to shed) is not
            // re-flagged forever.
            state.load_baseline = updates;
            let staged: Vec<(VertexId, usize, usize, _)> = match self.router.table() {
                Some(mut table) => plan
                    .into_iter()
                    .filter_map(|(hot, cold)| {
                        // `homed_components` reflects the rehomes staged
                        // earlier in this session, so a second move off
                        // the same hot shard picks its next-largest
                        // component, never the one already claimed.
                        let (member, _) = table
                            .homed_components(hot)
                            .into_iter()
                            .max_by_key(|&(_, size)| size)?;
                        table.rehome(member, cold);
                        let members: Arc<[VertexId]> = table.component_members(member).into();
                        let rx = self.shards[hot].request_migrate_out(members)?;
                        Some((member, hot, cold, rx))
                    })
                    .collect(),
                None => Vec::new(),
            };
            for (member, hot, cold, rx) in staged {
                if !self.complete_move(
                    MigrationTrigger::LoadBalance,
                    member,
                    hot,
                    cold,
                    rx,
                    &mut state.stats,
                    &mut report,
                ) {
                    break;
                }
            }
        }
        report.routing_epoch = self.router.table().map(|p| p.routing_epoch()).unwrap_or(0);
        report
    }

    /// Manually migrates the component containing `member` onto shard
    /// `to` — rehome, extract, evict, replay — regardless of the
    /// scheduler's triggers (the operator override, and the unit the
    /// migration benchmarks measure). Returns the completed move, or
    /// `None` when there is nothing to do: stateless routing, unknown
    /// vertex, the component already lives on `to`, or `to` out of
    /// range.
    pub fn migrate_component(&self, member: VertexId, to: usize) -> Option<MigrationRecord> {
        if to >= self.shards.len() {
            return None;
        }
        let mut state = self.migration.lock();
        let staged = {
            let mut table = self.router.table()?;
            let from = table.home_of(member)?;
            if from == to || from >= self.shards.len() {
                return None;
            }
            table.rehome(member, to);
            let members: Arc<[VertexId]> = table.component_members(member).into();
            self.shards[from].request_migrate_out(members).map(|rx| (from, rx))
        };
        let (from, rx) = staged?;
        let mut report = MigrationReport::default();
        self.complete_move(
            MigrationTrigger::Manual,
            member,
            from,
            to,
            rx,
            &mut state.stats,
            &mut report,
        );
        report.moves.pop()
    }

    /// The scheduled entry point: checks the two trigger signals —
    /// pending strand events and the [`ShardStats`] load imbalance —
    /// without touching any worker queue, and runs a full
    /// [`rebalance`](Self::rebalance) pass only when one fires.
    pub fn rebalance_if_needed(&self) -> Option<MigrationReport> {
        let pending = self.router.table().map(|p| p.pending_strands())?;
        if pending == 0 {
            let stats: Vec<ServiceStats> = self.shards.iter().map(|s| s.stats()).collect();
            let updates: Vec<u64> = stats.iter().map(|s| s.updates_applied).collect();
            let resident: Vec<u64> = stats.iter().map(|s| s.edges_resident).collect();
            let mut state = self.migration.lock();
            let window = state.load_window(&updates);
            if pick_load_move(&window, &resident, &self.migration_policy).is_none() {
                state.stats.served_idle += 1;
                return None;
            }
        }
        Some(self.rebalance())
    }

    /// Second half of one component move: await the evicted slice from
    /// the source, replay it into the target, account. Returns `false`
    /// when a shard has shut down mid-move.
    #[allow(clippy::too_many_arguments)]
    fn complete_move(
        &self,
        trigger: MigrationTrigger,
        member: VertexId,
        from: usize,
        to: usize,
        rx: Receiver<MigrationSlice>,
        stats: &mut MigrationStats,
        report: &mut MigrationReport,
    ) -> bool {
        let move_started = Instant::now();
        let Ok(slice) = rx.recv() else {
            // The source died after accepting the marker: its engine —
            // and with it the slice — is gone, evicted or not. Nothing
            // to restore; routing already points at the (live) target.
            stats.failed_moves += 1;
            return false;
        };
        if slice.is_empty() {
            stats.skipped_empty += 1;
            report.skipped_empty += 1;
            return true;
        }
        let record = MigrationRecord {
            trigger,
            member,
            from,
            to,
            vertices: slice.vertices,
            edges: slice.edges,
            edge_weight: slice.edge_weight,
        };
        if self.shards[to].absorb(slice.clone()).is_none() {
            // The target died mid-move but the slice is in hand and the
            // source is (presumably) alive: put the slice back where it
            // came from and point routing back at it, so the component
            // stays whole and exact. Both shards dead means the whole
            // runtime is shutting down — nothing left to preserve.
            stats.failed_moves += 1;
            if self.shards[from].absorb(slice).is_some() {
                if let Some(mut table) = self.router.table() {
                    table.rehome(member, from);
                }
            }
            return false;
        }
        stats.migrations += 1;
        match trigger {
            MigrationTrigger::StrandRepair => stats.strand_repairs += 1,
            MigrationTrigger::LoadBalance => stats.load_moves += 1,
            MigrationTrigger::Manual => {}
        }
        stats.edges_moved += record.edges as u64;
        stats.edge_weight_moved += record.edge_weight;
        let move_elapsed = move_started.elapsed();
        stats.last_move_ns = move_elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.migration_move_ns.record_duration(move_elapsed);
        self.registry.event(EventKind::Migration, record.edges as u64);
        report.moves.push(record);
        true
    }

    /// The repair pass proper: export → group/union/re-peel → publish.
    fn run_repair(&self, state: &mut RepairState) -> RepairedDetection {
        let pass_started = Instant::now();
        let hops = self.repair_config.hops;
        // Conservative baseline BEFORE the export: a shard whose export
        // fails keeps this marker, so the next scheduler call re-runs
        // instead of mistaking it for covered and serving stale forever.
        state.seen = self
            .shards
            .iter()
            .map(|s| {
                let d = s.current_detection();
                (d.epoch, d.updates_applied)
            })
            .collect();
        // Fan the export out: request every region first, then collect
        // the replies, so all shards drain their queues and extract
        // frontiers concurrently instead of one after another.
        let pending: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(shard, s)| s.request_candidate_region(hops).map(|rx| (shard, rx)))
            .collect();
        let mut regions: Vec<(usize, CandidateRegion)> = Vec::with_capacity(pending.len());
        for (shard, receiver) in pending {
            if let Ok(region) = receiver.recv() {
                // The reply carries the shard's post-drain freshness
                // marker — exactly the state this pass incorporates.
                // Recording it keeps the pass's own drain (and the
                // detection it published at export) from registering as
                // new traffic on the next scheduler poll.
                state.seen[shard] = (region.epoch, region.updates_applied);
                regions.push((shard, region));
            }
        }
        let updates: u64 = regions.iter().map(|(_, r)| r.updates_applied).sum();
        state.stats.repairs += 1;
        state.stats.regions_exported += regions.len() as u64;
        let outcome = repair_regions(&regions, &mut state.scratch);
        state.stats.groups_merged += outcome.groups_merged as u64;
        state.stats.corrupt_regions += outcome.corrupt_regions as u64;
        state.stats.last_gain = (outcome.density - outcome.baseline_density).max(0.0);
        state.last_pass_updates = updates;
        let published = self.publish_repaired(state, outcome, updates);
        let pass_elapsed = pass_started.elapsed();
        state.stats.last_pass_ns = pass_elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.repair_pass_ns.record_duration(pass_elapsed);
        self.registry.event(EventKind::RepairPass, state.stats.regions_exported);
        published
    }

    /// Swaps the published repaired snapshot only when the answer
    /// actually changed (epoch bump, fresh `Arc`); otherwise the previous
    /// member allocation is kept and only provenance metadata refreshes.
    fn publish_repaired(
        &self,
        state: &mut RepairState,
        outcome: RepairOutcome,
        updates: u64,
    ) -> RepairedDetection {
        let mut guard = self.repaired.write();
        let unchanged = guard.detection.size == outcome.size
            && guard.detection.density.to_bits() == outcome.density.to_bits()
            && *guard.detection.members == *outcome.members;
        let members: Arc<[VertexId]> = if unchanged {
            Arc::clone(&guard.detection.members)
        } else {
            state.epoch += 1;
            state.stats.published += 1;
            Arc::from(outcome.members)
        };
        *guard = RepairedDetection {
            detection: PublishedDetection {
                size: outcome.size,
                density: outcome.density,
                members,
                updates_applied: updates,
                epoch: state.epoch,
            },
            baseline_density: outcome.baseline_density,
            baseline_shard: outcome.baseline_shard,
            merged_shards: outcome.merged_shards,
            repaired: outcome.repaired,
            regions: outcome.regions,
        };
        guard.clone()
    }

    /// Shuts every shard down in turn, waiting for each queue to drain
    /// and each worker to exit, and returns the final merged detection —
    /// it reflects every transaction ever submitted. (Workers keep
    /// draining their own queues concurrently while earlier shards are
    /// joined, so the total wait is governed by the slowest shard.)
    pub fn shutdown(mut self) -> GlobalDetection {
        let snapshots: Vec<PublishedDetection> =
            self.shards.drain(..).map(SpadeService::shutdown).collect();
        self.aggregator.merge(snapshots)
    }

    /// [`shutdown`](Self::shutdown) preceded by a final flush + repair
    /// pass, so the returned repaired snapshot reflects every submitted
    /// transaction (including grouped benign edges, which the flush
    /// forces out of the per-shard buffers before regions are exported).
    pub fn shutdown_repaired(self) -> (GlobalDetection, RepairedDetection) {
        self.flush();
        let repaired = self.repair();
        (self.shutdown(), repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Noise path + a dense ring, mirroring the single-service test.
    fn feed_ring(service: &ShardedSpadeService) -> u64 {
        let mut submitted = 0;
        for i in 0..10u32 {
            assert!(service.submit(v(i), v(i + 1), 1.0));
            submitted += 1;
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    assert!(service.submit(v(a), v(b), 25.0));
                    submitted += 1;
                }
            }
        }
        submitted
    }

    #[test]
    fn sharded_runtime_detects_the_ring() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(4));
        assert_eq!(service.num_shards(), 4);
        let submitted = feed_ring(&service);
        let global = service.shutdown();
        assert!(global.best.density > 10.0);
        assert!(global.best.members.iter().all(|m| (50..54).contains(&m.0)));
        assert_eq!(global.total_updates, submitted);
    }

    #[test]
    fn one_shard_equals_the_single_service() {
        let sharded = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(1));
        feed_ring(&sharded);
        let global = sharded.shutdown();

        let single =
            crate::service::SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 64);
        for i in 0..10u32 {
            single.submit(v(i), v(i + 1), 1.0);
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    single.submit(v(a), v(b), 25.0);
                }
            }
        }
        let want = single.shutdown();
        assert_eq!(global.best.size, want.size);
        assert!((global.best.density - want.density).abs() < 1e-12);
        assert_eq!(global.best.members, want.members);
    }

    #[test]
    fn per_shard_stats_cover_all_submissions() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(3));
        let submitted = feed_ring(&service);
        // Drain deterministically before reading stats.
        let global = service.current_detection();
        let _ = global;
        let final_global = {
            let stats_before = service.stats();
            assert_eq!(stats_before.len(), 3);
            service.shutdown()
        };
        assert_eq!(final_global.total_updates, submitted);
    }

    #[test]
    fn merged_metrics_reconcile_with_updates_applied() {
        use crate::service::metric_names as worker_names;
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(3));
        let submitted = feed_ring(&service);
        let _ = service.repair();
        // Wait for every shard worker to drain its queue — repair alone
        // is not a barrier (it may serve a cached/partial export).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while service.stats().iter().map(|s| s.service.updates_applied).sum::<u64>() < submitted {
            assert!(std::time::Instant::now() < deadline, "shard workers stalled");
            std::thread::yield_now();
        }

        let snap = service.metrics();
        assert_eq!(snap.gauges[super::metric_names::SHARDS], 3);
        assert_eq!(
            snap.histograms[worker_names::STAGE_QUEUE_WAIT_NS].count,
            submitted,
            "every submitted insert is timed through its queue exactly once"
        );
        assert_eq!(snap.counters[worker_names::UPDATES_TOTAL], submitted);
        let applied: u64 = service.stats().iter().map(|s| s.service.updates_applied).sum();
        assert_eq!(applied, submitted);
        assert!(snap.histograms[worker_names::STAGE_PUBLISH_NS].count >= 3);

        // The runtime-level registry saw the repair pass.
        assert_eq!(snap.counters["spade_repair_passes_total"], 1);
        assert_eq!(snap.histograms[super::metric_names::REPAIR_PASS_NS].count, 1);
        assert!(snap.events.iter().any(|e| e.kind == EventKind::RepairPass));
        assert!(snap.uptime_secs > 0.0);

        // The rendered exposition carries the merged series.
        let text = snap.render_prometheus();
        assert!(text.contains("spade_stage_queue_wait_ns_count"));
        assert!(text.contains("spade_repair_pass_ns_count 1"));
        service.shutdown();
    }

    #[test]
    fn migration_moves_are_timed_and_traced() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(2));
        for (a, b, w) in ring_pairs(10..14, 15.0) {
            assert!(service.submit(a, b, w));
        }
        let home = {
            let mut found = None;
            for to in 0..2 {
                if service.migrate_component(v(10), to).is_some() {
                    found = Some(to);
                    break;
                }
            }
            found.expect("one direction must move")
        };
        let _ = home;
        let snap = service.metrics();
        assert_eq!(snap.histograms[super::metric_names::MIGRATION_MOVE_NS].count, 1);
        assert_eq!(snap.counters["spade_migrations_total"], 1);
        assert!(snap.events.iter().any(|e| e.kind == EventKind::Migration));
        drop(service);
    }

    #[test]
    fn grouped_shards_flush_on_shutdown() {
        let config = ShardedConfig {
            shards: 2,
            grouping: Some(GroupingConfig::default()),
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn_with(config, |_| {
            // Pre-established community so benign traffic buffers.
            let mut engine = SpadeEngine::new(WeightedDensity);
            for a in 100..103u32 {
                for b in 100..103u32 {
                    if a != b {
                        engine.insert_edge(v(a), v(b), 20.0).unwrap();
                    }
                }
            }
            engine
        });
        // Benign edges: buffered inside their shard until shutdown drains.
        for i in 0..6u32 {
            assert!(service.submit(v(i), v(i + 1), 0.01));
        }
        let global = service.shutdown();
        assert_eq!(global.total_updates, 6);
        assert!(global.best.size >= 3);
    }

    #[test]
    fn drop_joins_all_workers() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(4));
        feed_ring(&service);
        drop(service); // must not hang or panic
    }

    /// All ordered pairs of a heavy ring over `ids`, plus a noise path.
    fn ring_with_noise(ids: std::ops::Range<u32>) -> Vec<(VertexId, VertexId, f64)> {
        let mut edges = Vec::new();
        for i in 0..10u32 {
            edges.push((v(i), v(i + 1), 1.0));
        }
        for a in ids.clone() {
            for b in ids.clone() {
                if a != b {
                    edges.push((v(a), v(b), 25.0));
                }
            }
        }
        edges
    }

    #[test]
    fn repair_recovers_hash_split_ring_exactly() {
        let edges = ring_with_noise(50..54);
        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            solo.insert_edge(a, b, w).unwrap();
        }
        let want = solo.detect();
        let mut want_members: Vec<u32> = solo.community(want).iter().map(|m| m.0).collect();
        want_members.sort_unstable();

        let config = ShardedConfig {
            shards: 4,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        let repaired = service.repair();
        let global = service.shutdown();

        // The diluted per-shard baseline never beats the solo answer...
        assert!(repaired.baseline_density <= want.density + 1e-9);
        assert!(global.best.density <= want.density + 1e-9);
        // ...and the repaired snapshot recovers it exactly.
        assert!((repaired.detection.density - want.density).abs() < 1e-9);
        let got: Vec<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
        assert_eq!(got, want_members);
        assert_eq!(repaired.detection.size, want.size);
        assert!(repaired.detection.density >= repaired.baseline_density);
    }

    #[test]
    fn unchanged_repair_keeps_the_published_arc() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig {
                shards: 2,
                strategy: PartitionStrategy::HashBySource,
                ..Default::default()
            },
        );
        for (a, b, w) in ring_with_noise(80..84) {
            assert!(service.submit(a, b, w));
        }
        let first = service.repair();
        let second = service.repair();
        assert_eq!(first.detection.epoch, second.detection.epoch);
        assert!(std::sync::Arc::ptr_eq(&first.detection.members, &second.detection.members));
        let stats = service.repair_stats();
        assert_eq!(stats.repairs, 2);
        assert_eq!(stats.published, 1, "identical answers must not swap the snapshot");
        drop(service);
    }

    #[test]
    fn repaired_detection_serves_from_cache_until_shards_change() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig {
                shards: 2,
                strategy: PartitionStrategy::HashBySource,
                ..Default::default()
            },
        );
        for (a, b, w) in ring_with_noise(80..84) {
            assert!(service.submit(a, b, w));
        }
        // Force one pass (drains everything). Freshness markers are
        // captured conservatively *before* each export, so the first
        // poll may re-run once over the now-settled shards; from then on
        // the scheduler answers from cache.
        let forced = service.repair();
        let polled = service.repaired_detection();
        assert_eq!(polled.detection.epoch, forced.detection.epoch);
        let cached = service.repaired_detection();
        assert_eq!(cached.detection.epoch, forced.detection.epoch);
        assert!(service.repair_stats().served_cached >= 1);
        // New traffic invalidates the cache; the scheduler notices.
        for i in 100..120u32 {
            assert!(service.submit(v(i), v(i + 1), 1.0));
        }
        let _ = service.repair(); // deterministic drain via the pass
        assert!(service.repair_stats().repairs >= 2);
        drop(service);
    }

    #[test]
    fn shutdown_repaired_covers_every_submission() {
        let config = ShardedConfig {
            shards: 3,
            strategy: PartitionStrategy::HashBySource,
            grouping: Some(GroupingConfig::default()),
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        let edges = ring_with_noise(60..64);
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        let (global, repaired) = service.shutdown_repaired();
        assert_eq!(global.total_updates, edges.len() as u64);
        assert_eq!(repaired.detection.updates_applied, edges.len() as u64);
        assert!(repaired.detection.density >= global.best.density - 1e-9);
    }

    /// All ordered pairs of a heavy ring, shared by the migration tests.
    fn ring_pairs(ids: std::ops::Range<u32>, w: f64) -> Vec<(VertexId, VertexId, f64)> {
        let mut edges = Vec::new();
        for a in ids.clone() {
            for b in ids.clone() {
                if a != b {
                    edges.push((v(a), v(b), w));
                }
            }
        }
        edges
    }

    /// Solo-engine ground truth: sorted members + density.
    fn solo_answer(edges: &[(VertexId, VertexId, f64)]) -> (usize, f64, Vec<u32>) {
        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in edges {
            let _ = solo.insert_edge(a, b, w);
        }
        let det = solo.detect();
        let mut members: Vec<u32> = solo.community(det).iter().map(|m| m.0).collect();
        members.sort_unstable();
        (det.size, det.density, members)
    }

    #[test]
    fn stranded_merge_is_repaired_to_solo_exactness() {
        // Two fraud half-rings born as separate components (pinned to
        // different shards), then bridged: the losing side's edges are
        // stranded until a rebalance pass migrates them home.
        let mut edges = Vec::new();
        edges.extend(ring_pairs(50..54, 25.0)); // component A
        edges.extend(ring_pairs(80..84, 25.0)); // component B
        for i in 0..10u32 {
            edges.push((v(i), v(i + 1), 1.0)); // background noise
        }
        // The bridge merges A and B into one community.
        edges.push((v(50), v(80), 25.0));
        edges.push((v(81), v(53), 25.0));
        let (want_size, want_density, want_members) = solo_answer(&edges);

        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(2));
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        // Before the pass the merged ring is split: the strand event is
        // pending and the detection underestimates the solo answer.
        let report = service.rebalance();
        assert!(!report.moves.is_empty(), "the stranded slice must move");
        let stats = service.migration_stats();
        assert!(stats.strand_repairs >= 1);
        assert_eq!(stats.migrations as usize, report.moves.len());
        assert!(stats.edges_moved > 0);

        let global = service.shutdown();
        assert_eq!(global.total_updates, edges.len() as u64);
        let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
        got.sort_unstable();
        assert_eq!(got, want_members, "post-migration members diverge from solo");
        assert_eq!(global.best.size, want_size);
        assert!(
            (global.best.density - want_density).abs() < 1e-9,
            "post-migration density {} vs solo {}",
            global.best.density,
            want_density
        );
    }

    #[test]
    fn rebalance_is_a_noop_under_hash_routing() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig {
                shards: 2,
                strategy: PartitionStrategy::HashBySource,
                ..Default::default()
            },
        );
        for (a, b, w) in ring_with_noise(50..54) {
            assert!(service.submit(a, b, w));
        }
        assert!(service.rebalance_if_needed().is_none());
        let report = service.rebalance();
        assert!(report.moves.is_empty());
        assert_eq!(report.routing_epoch, 0);
        assert_eq!(service.routing_epoch(), 0);
        drop(service);
    }

    #[test]
    fn load_imbalance_sheds_the_largest_component() {
        let config = ShardedConfig {
            shards: 2,
            migration: crate::shard::migrate::MigrationPolicy {
                imbalance_ratio: 1.2,
                min_updates: 8,
                max_load_moves: 1,
            },
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        // One dominant component hammers its home shard; a tiny one
        // lives on the other.
        let mut edges = ring_pairs(10..16, 10.0);
        edges.push((v(100), v(101), 1.0));
        let (want_size, want_density, want_members) = solo_answer(&edges);
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        // Drain so the load signal reflects every submission.
        for _ in 0..2_000 {
            let applied: u64 = service.stats().iter().map(|s| s.service.updates_applied).sum();
            if applied >= edges.len() as u64 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let report = service.rebalance_if_needed().expect("imbalance must trigger a pass");
        assert_eq!(report.moves.len(), 1);
        assert_eq!(report.moves[0].trigger, MigrationTrigger::LoadBalance);
        assert_eq!(report.moves[0].edges, 30, "the 6-ring (30 ordered pairs) must move");
        assert!(report.routing_epoch >= 1, "a rehome must bump the routing epoch");
        assert_eq!(service.migration_stats().load_moves, 1);

        // Exactness survives the move; the evicted source no longer
        // holds the ring.
        let global = service.shutdown();
        assert_eq!(global.total_updates, edges.len() as u64);
        let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
        got.sort_unstable();
        assert_eq!(got, want_members);
        assert_eq!(global.best.size, want_size);
        assert!((global.best.density - want_density).abs() < 1e-9);
    }

    #[test]
    fn rebalance_if_needed_idles_on_a_balanced_fleet() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(2));
        // Two disjoint, similar components: no strand, no imbalance
        // (and far below the default min_updates floor anyway).
        for (a, b, w) in ring_pairs(10..13, 5.0) {
            assert!(service.submit(a, b, w));
        }
        for (a, b, w) in ring_pairs(20..23, 5.0) {
            assert!(service.submit(a, b, w));
        }
        assert!(service.rebalance_if_needed().is_none());
        assert_eq!(service.migration_stats().served_idle, 1);
        assert_eq!(service.migration_stats().passes, 0);
        drop(service);
    }

    #[test]
    fn manual_migration_ping_pongs_a_component_without_loss() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(2));
        let edges = ring_pairs(10..14, 15.0);
        let (want_size, want_density, want_members) = solo_answer(&edges);
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        // Bounce the ring between the shards a few times; every hop must
        // carry the full slice.
        let mut from_to = Vec::new();
        for round in 0..4 {
            let to = (round + 1) % 2;
            match service.migrate_component(v(10), to) {
                Some(record) => {
                    assert_eq!(record.to, to);
                    assert_eq!(record.edges, edges.len());
                    from_to.push((record.from, record.to));
                }
                None => {
                    // Already home: force the other direction next round.
                }
            }
        }
        assert!(!from_to.is_empty());
        assert_eq!(service.migrate_component(v(9999), 0), None, "unknown vertex");
        assert_eq!(service.migrate_component(v(10), 99), None, "shard out of range");
        let global = service.shutdown();
        let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
        got.sort_unstable();
        assert_eq!(got, want_members);
        assert_eq!(global.best.size, want_size);
        assert!((global.best.density - want_density).abs() < 1e-9);
    }

    #[test]
    fn repeated_rebalance_passes_are_stable() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(2));
        let mut edges = ring_pairs(50..53, 20.0);
        edges.extend(ring_pairs(80..83, 20.0));
        edges.push((v(50), v(80), 20.0));
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        let first = service.rebalance();
        let moved: usize = first.moves.len();
        // A second pass finds nothing left to do.
        let second = service.rebalance();
        assert!(second.moves.is_empty(), "second pass must be a no-op");
        assert_eq!(second.skipped_empty, 0);
        assert!(moved <= 1);
        let (want_size, _, want_members) = solo_answer(&edges);
        let global = service.shutdown();
        let mut got: Vec<u32> = global.best.members.iter().map(|m| m.0).collect();
        got.sort_unstable();
        assert_eq!(got, want_members);
        assert_eq!(global.best.size, want_size);
    }

    #[test]
    fn fill_groups_stops_at_the_first_full_shard() {
        let edges: Vec<_> = (0..6u32).map(|i| (v(i), v(i + 10), 1.0)).collect();
        let mut free = vec![2usize, 1];
        let mut groups = vec![Vec::new(), Vec::new()];
        let mut turn = 0usize;
        let accepted = fill_groups(
            &edges,
            &mut |_, _| {
                let shard = turn % 2;
                turn += 1;
                shard
            },
            &mut free,
            &mut groups,
        );
        // Alternating routes with free = [2, 1]: edge 0 → shard 0, edge
        // 1 → shard 1 (now full), edge 2 → shard 0, edge 3 → shard 1
        // stops the walk even though shard 0 still has room.
        assert_eq!(accepted, 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 1);
        assert_eq!(free, vec![0, 0]);
        assert_eq!(groups[0][1].0, v(2), "prefix must preserve frame order");
    }

    #[test]
    fn submit_batch_matches_per_edge_submits_exactly() {
        let edges = ring_with_noise(50..54);

        // Grouped submission through the default (stateful) router.
        let batched = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(3));
        let outcome = batched.submit_batch(&edges, None);
        assert_eq!(outcome.accepted, edges.len(), "default queues must admit the whole frame");
        assert!(!outcome.closed);
        assert_eq!(outcome.shard_counts.iter().sum::<usize>(), edges.len());
        assert_eq!(
            batched.submit_batch(&[], None),
            BatchSubmit { accepted: 0, closed: false, shard_counts: vec![0; 3] }
        );
        let got = batched.shutdown();

        // Per-edge submission of the same stream.
        let per_edge = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(3));
        for &(a, b, w) in &edges {
            assert!(per_edge.submit(a, b, w));
        }
        let want = per_edge.shutdown();

        assert_eq!(got.total_updates, want.total_updates);
        assert_eq!(got.best.size, want.best.size);
        assert!((got.best.density - want.best.density).abs() < 1e-12);
        assert_eq!(got.best.members, want.best.members);
    }

    #[test]
    fn submit_batch_under_hash_routing_covers_every_edge() {
        let config = ShardedConfig {
            shards: 4,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        let edges = ring_with_noise(50..54);
        let outcome = service.submit_batch(&edges, None);
        assert_eq!(outcome.accepted, edges.len());
        assert!(!outcome.closed);
        let global = service.shutdown();
        assert_eq!(global.total_updates, edges.len() as u64);
    }

    #[test]
    fn top_ranking_orders_by_density() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig { shards: 3, top_k: 3, ..Default::default() },
        );
        feed_ring(&service);
        let global = service.shutdown();
        assert!(!global.top.is_empty());
        for pair in global.top.windows(2) {
            assert!(pair[0].detection.density >= pair[1].detection.density, "ranking out of order");
        }
        assert_eq!(global.top[0].shard, global.best_shard);
    }
}
