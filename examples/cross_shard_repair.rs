//! Dilution and repair: what hash routing costs, and how the cross-shard
//! repair pass gets it back.
//!
//! The same injected-fraud stream is replayed through the sharded runtime
//! with stateless hash routing at N ∈ {1, 2, 4, 8}. Hash routing splits
//! the fraud community's edges across shards, so the best per-shard
//! density sinks as N grows — the merged "max of shard views" answer
//! becomes untrustworthy. After each replay a repair pass runs: every
//! shard exports its detected community plus a 1-hop frontier (serialized
//! through the persist subgraph codec), regions sharing members are
//! unioned and re-peeled, and the repaired detection lands back on the
//! solo-engine answer exactly.
//!
//! Run with: `cargo run --release --example cross_shard_repair`

use spade::core::{SpadeEngine, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};

fn main() {
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 600,
        merchants: 200,
        transactions: 6_000,
        seed: 0xC1_5EED,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 240,
            amount: 600.0,
            seed: 0xC1_5EED,
            ..Default::default()
        },
    );

    // Ground truth: one engine over the whole stream.
    let mut solo = SpadeEngine::new(WeightedDensity);
    for e in &injected.edges {
        let _ = solo.insert_edge(e.src, e.dst, e.raw);
    }
    let want = solo.detect();
    let mut want_members: Vec<u32> = solo.community(want).iter().map(|m| m.0).collect();
    want_members.sort_unstable();
    println!(
        "stream: {} transactions; solo engine detects {} members at density {:.3}\n",
        injected.edges.len(),
        want.size,
        want.density,
    );

    println!(
        "{:>6} | {:>14} | {:>14} | {:>8} | {:>12} | {:>7}",
        "shards", "best shard g", "repaired g", "dilution", "merged", "exact"
    );
    println!("{}", "-".repeat(78));
    for shards in [1usize, 2, 4, 8] {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig {
                shards,
                queue_capacity: 4096,
                strategy: PartitionStrategy::HashBySource,
                ..Default::default()
            },
        );
        for e in &injected.edges {
            service.submit(e.src, e.dst, e.raw);
        }
        let repaired = service.repair();
        let stats = service.repair_stats();
        service.shutdown();

        let mut got: Vec<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
        got.sort_unstable();
        let exact = got == want_members && (repaired.detection.density - want.density).abs() < 1e-9;
        println!(
            "{:>6} | {:>14.3} | {:>14.3} | {:>7.1}% | {:>12} | {:>7}",
            shards,
            repaired.baseline_density,
            repaired.detection.density,
            (1.0 - repaired.baseline_density / want.density) * 100.0,
            format!("{} group(s)", stats.groups_merged),
            if exact { "yes" } else { "NO" },
        );
        assert!(
            repaired.detection.density >= repaired.baseline_density,
            "repair must never lose density"
        );
        assert!(exact, "repair must recover the solo-engine answer at N={shards}");
    }
    println!(
        "\nevery row repairs back to the solo density {:.3} — the diluted per-shard \
         maximum is what the aggregator alone could report",
        want.density
    );
}
