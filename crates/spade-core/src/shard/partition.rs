//! Edge-to-shard routing policies.
//!
//! Spade's incremental reordering is local to a community (§4.2: an
//! insertion only perturbs the window between its endpoints), so the
//! transaction graph shards naturally — as long as a community's edges
//! land on the same shard, that shard's local detection is the global one.
//! Two built-in policies trade off balance against community locality:
//!
//! * [`HashPartitioner`] — stateless `fx`-hash of the source vertex.
//!   Perfectly balanced and O(1), but a community whose members span
//!   hash buckets is split across shards and its density diluted.
//! * [`ConnectivityPartitioner`] — a union-find over every edge seen so
//!   far. Each connected component is pinned to a *home shard* (chosen
//!   least-loaded at component birth), so observed communities stay
//!   co-resident. When a component outgrows `max_component` vertices —
//!   the giant component of any real transaction graph — its edges
//!   *spill* to hash routing, bounding the load any single shard can
//!   attract while fraud-sized components stay pinned.

use spade_graph::hash::{FxHashSet, FxHasher};
use spade_graph::VertexId;
use std::hash::Hasher;

/// A component merge that left already-routed edges behind: the losing
/// side's edges stay on `stranded_shard` while the surviving home now
/// attracts all future traffic of the merged component. The migration
/// subsystem (`crate::shard::migrate`) drains these events and moves the
/// stranded slice to the surviving home.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrandEvent {
    /// Any member of the merged component (stable across later merges —
    /// `find` resolves it to the current root).
    pub member: VertexId,
    /// The shard still holding the losing side's earlier edges.
    pub stranded_shard: usize,
}

/// Routes one edge to a shard in `[0, num_shards)`.
///
/// `route` takes `&mut self`: stateful partitioners (union-find) learn
/// the graph as it streams. Implementations must be deterministic per
/// input history — replaying a stream must reproduce the same routing.
///
/// The remaining methods are optional *rebalancing hooks*: a partitioner
/// that pins work to shards can expose its routing table so the
/// migration scheduler can move a component and re-point its traffic.
/// Stateless policies keep the defaults (no homes, nothing to migrate).
pub trait Partitioner: Send {
    /// The shard that must process edge `(src, dst)`.
    fn route(&mut self, src: VertexId, dst: VertexId, num_shards: usize) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Monotone routing-table revision: bumped every time the shard an
    /// already-routed component maps to changes (rehome, shard-count
    /// clamp). Stateless policies stay at 0 forever.
    fn routing_epoch(&self) -> u64 {
        0
    }

    /// Number of recorded strand events not yet drained.
    fn pending_strands(&self) -> usize {
        0
    }

    /// Takes the recorded strand events, deduplicated against the current
    /// routing table (events whose component meanwhile rehomed onto the
    /// stranded shard, spilled, or lost its home are dropped).
    fn drain_strands(&mut self, _num_shards: usize) -> Vec<StrandEvent> {
        Vec::new()
    }

    /// The home shard of `member`'s component, if it has one.
    fn home_of(&mut self, _member: VertexId) -> Option<usize> {
        None
    }

    /// Re-points `member`'s component at `shard` and bumps the routing
    /// epoch. Returns the previous home. `None` means the policy does not
    /// support rehoming (stateless) or the vertex is unknown.
    fn rehome(&mut self, _member: VertexId, _shard: usize) -> Option<usize> {
        None
    }

    /// Every vertex of `member`'s component (empty when unsupported).
    fn component_members(&mut self, _member: VertexId) -> Vec<VertexId> {
        Vec::new()
    }

    /// `(representative member, vertex count)` of every pinned component
    /// homed on `shard` (empty when unsupported).
    fn homed_components(&mut self, _shard: usize) -> Vec<(VertexId, usize)> {
        Vec::new()
    }
}

/// Built-in routing policies, as configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Stateless hash of the source vertex id.
    HashBySource,
    /// Union-find community co-residency with spill to hash for
    /// components larger than `max_component` vertices.
    #[default]
    Connectivity,
    /// [`PartitionStrategy::Connectivity`] with an explicit spill bound.
    ConnectivityWithSpill {
        /// Component size (vertices) above which edges spill to hash.
        max_component: usize,
    },
}

impl PartitionStrategy {
    /// Default spill bound: components larger than this are treated as
    /// the benign giant component and hash-routed. Fraud communities in
    /// the paper's case studies are orders of magnitude smaller.
    pub const DEFAULT_MAX_COMPONENT: usize = 4096;

    /// Materializes the policy.
    pub fn build(self) -> Box<dyn Partitioner> {
        match self {
            PartitionStrategy::HashBySource => Box::new(HashPartitioner),
            PartitionStrategy::Connectivity => {
                Box::new(ConnectivityPartitioner::new(PartitionStrategy::DEFAULT_MAX_COMPONENT))
            }
            PartitionStrategy::ConnectivityWithSpill { max_component } => {
                Box::new(ConnectivityPartitioner::new(max_component))
            }
        }
    }

    /// Parses a CLI name: `hash`, `connectivity` (alias `conn`), or
    /// `conn:<max_component>` / `connectivity:<max_component>` for an
    /// explicit spill bound.
    pub fn from_name(name: &str) -> Option<PartitionStrategy> {
        let lower = name.to_ascii_lowercase();
        if let Some((policy, bound)) = lower.split_once(':') {
            if !matches!(policy, "connectivity" | "conn") {
                return None;
            }
            let max_component = bound.parse::<usize>().ok()?;
            return Some(PartitionStrategy::ConnectivityWithSpill { max_component });
        }
        match lower.as_str() {
            "hash" => Some(PartitionStrategy::HashBySource),
            "connectivity" | "conn" => Some(PartitionStrategy::Connectivity),
            _ => None,
        }
    }
}

#[inline]
fn hash_shard(v: VertexId, num_shards: usize) -> usize {
    let mut h = FxHasher::default();
    h.write_u32(v.0);
    (h.finish() % num_shards as u64) as usize
}

/// Stateless hash-by-source routing.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    #[inline]
    fn route(&mut self, src: VertexId, _dst: VertexId, num_shards: usize) -> usize {
        hash_shard(src, num_shards)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Union-find over seen edges keeping components shard-resident.
///
/// Routing is forward-only at the edge level: edges already delivered to
/// a shard are not re-routed retroactively. When two components that
/// *each* already have a home merge, one home survives (the larger
/// component's) and all future edges follow it — the smaller side's
/// earlier edges stay stranded on its old shard, so a community
/// assembled by such a merge is split across two shards. The partitioner
/// records every such merge as a [`StrandEvent`]; the migration
/// subsystem (`crate::shard::migrate`) drains them and moves the
/// stranded slice onto the surviving home, after which the component is
/// whole again. Components born from a single seed edge — the shape of
/// the paper's fraud bursts, which allocate fresh accounts — always keep
/// one home and are detected exactly with no migration at all.
#[derive(Clone, Debug)]
pub struct ConnectivityPartitioner {
    /// Union-find parent, dense by vertex id (`u32::MAX` = singleton not
    /// yet materialized is impossible: ids materialize on first sight).
    parent: Vec<u32>,
    /// Component vertex count, valid at roots.
    size: Vec<u32>,
    /// Home shard per component, valid at roots (`usize::MAX` = none).
    home: Vec<usize>,
    /// *Pinned* edges routed per shard (least-loaded assignment for new
    /// components). Spilled edges are accounted separately — hash
    /// routing already balances them, and counting them here would
    /// permanently bias pinning away from shards that merely host more
    /// of the giant component's hash range.
    load: Vec<u64>,
    /// Spilled (hash-routed) edges per shard, for reports.
    spill_load: Vec<u64>,
    /// Spill bound: components larger than this hash-route their edges.
    max_component: usize,
    /// Routing-table revision: bumped whenever the shard an
    /// already-routed component maps to changes.
    epoch: u64,
    /// Home-vs-home merges not yet drained by the migration scheduler.
    strands: Vec<StrandEvent>,
}

const NO_HOME: usize = usize::MAX;

impl ConnectivityPartitioner {
    /// Creates the partitioner with the given spill bound (0 = never
    /// pin; every edge hash-routes).
    pub fn new(max_component: usize) -> Self {
        ConnectivityPartitioner {
            parent: Vec::new(),
            size: Vec::new(),
            home: Vec::new(),
            load: Vec::new(),
            spill_load: Vec::new(),
            max_component,
            epoch: 0,
            strands: Vec::new(),
        }
    }

    fn ensure(&mut self, v: VertexId) {
        let idx = v.index();
        if idx >= self.parent.len() {
            let old = self.parent.len();
            self.parent.extend(old as u32..=idx as u32);
            self.size.resize(idx + 1, 1);
            self.home.resize(idx + 1, NO_HOME);
        }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Current component size of `v`'s component (test/introspection).
    pub fn component_size(&mut self, v: VertexId) -> usize {
        if v.index() >= self.parent.len() {
            return 0;
        }
        let root = self.find(v.0);
        self.size[root as usize] as usize
    }

    /// Pinned edges routed to each shard so far (excludes spill traffic).
    pub fn pinned_load(&self) -> &[u64] {
        &self.load
    }

    /// Spilled (hash-routed) edges delivered to each shard so far.
    pub fn spilled_load(&self) -> &[u64] {
        &self.spill_load
    }

    /// Least-loaded shard among the *first* `num_shards` entries — a
    /// partitioner reused with a smaller shard count must never pin to a
    /// shard index that no longer exists.
    fn least_loaded(&self, num_shards: usize) -> usize {
        self.load[..num_shards.min(self.load.len())]
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(s, _)| s)
            .unwrap_or(0)
    }
}

impl Partitioner for ConnectivityPartitioner {
    fn route(&mut self, src: VertexId, dst: VertexId, num_shards: usize) -> usize {
        if self.load.len() < num_shards {
            self.load.resize(num_shards, 0);
        }
        if self.spill_load.len() < num_shards {
            self.spill_load.resize(num_shards, 0);
        }
        self.ensure(src);
        self.ensure(dst);
        let ra = self.find(src.0);
        let rb = self.find(dst.0);

        // Union by size. The surviving (larger) root keeps its home when
        // it has one — so when both sides are homed, the larger
        // component's home wins and the smaller side's earlier edges
        // stay stranded on its old shard; only when the larger side is
        // home-less does it inherit the smaller side's home. Biasing
        // toward the larger component strands fewer already-routed
        // edges. Every home-vs-home merge is recorded as a strand event
        // so the migration scheduler can move the losing slice later.
        let root = if ra == rb {
            ra
        } else {
            let (big, small) =
                if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
            self.parent[small as usize] = big;
            self.size[big as usize] += self.size[small as usize];
            if self.home[big as usize] == NO_HOME {
                self.home[big as usize] = self.home[small as usize];
            } else if self.home[small as usize] != NO_HOME
                && self.home[small as usize] != self.home[big as usize]
            {
                self.strands.push(StrandEvent {
                    member: VertexId(big),
                    stranded_shard: self.home[small as usize],
                });
            }
            big
        };

        if self.max_component > 0 && self.size[root as usize] as usize <= self.max_component {
            let home = self.home[root as usize];
            if home == NO_HOME || home >= num_shards {
                // Component birth — or a pinned home that no longer
                // exists because the partitioner is being reused with a
                // smaller shard count: (re-)pin to the least-loaded
                // shard. A re-pin changes where an existing component's
                // traffic lands, so it bumps the routing epoch.
                let least = self.least_loaded(num_shards);
                if home != NO_HOME {
                    self.epoch += 1;
                }
                self.home[root as usize] = least;
                self.load[least] += 1;
                least
            } else {
                self.load[home] += 1;
                home
            }
        } else {
            // Spill: the component outgrew a shard; route by source
            // hash. Clear the now-stale home so introspection (and any
            // later shard-count change) never resurrects it.
            if self.home[root as usize] != NO_HOME {
                self.home[root as usize] = NO_HOME;
                self.epoch += 1;
            }
            let spill = hash_shard(src, num_shards);
            self.spill_load[spill] += 1;
            spill
        }
    }

    fn name(&self) -> &'static str {
        "connectivity"
    }

    fn routing_epoch(&self) -> u64 {
        self.epoch
    }

    fn pending_strands(&self) -> usize {
        self.strands.len()
    }

    fn drain_strands(&mut self, num_shards: usize) -> Vec<StrandEvent> {
        let pending = std::mem::take(&mut self.strands);
        let mut seen: FxHashSet<(u32, usize)> = FxHashSet::default();
        let mut live = Vec::new();
        for event in pending {
            let root = self.find(event.member.0);
            let home = self.home[root as usize];
            // Drop events that can no longer produce a useful migration:
            // the component spilled, lost its home, rehomed onto the
            // stranded shard itself, or points at a shard that no longer
            // exists.
            if home == NO_HOME
                || home == event.stranded_shard
                || event.stranded_shard >= num_shards
                || (self.max_component > 0
                    && self.size[root as usize] as usize > self.max_component)
            {
                continue;
            }
            if seen.insert((root, event.stranded_shard)) {
                live.push(StrandEvent {
                    member: VertexId(root),
                    stranded_shard: event.stranded_shard,
                });
            }
        }
        live
    }

    fn home_of(&mut self, member: VertexId) -> Option<usize> {
        if member.index() >= self.parent.len() {
            return None;
        }
        let root = self.find(member.0);
        match self.home[root as usize] {
            NO_HOME => None,
            home => Some(home),
        }
    }

    fn rehome(&mut self, member: VertexId, shard: usize) -> Option<usize> {
        if member.index() >= self.parent.len() {
            return None;
        }
        let root = self.find(member.0);
        let old = self.home[root as usize];
        if old != shard {
            self.home[root as usize] = shard;
            self.epoch += 1;
        }
        match old {
            NO_HOME => None,
            home => Some(home),
        }
    }

    fn component_members(&mut self, member: VertexId) -> Vec<VertexId> {
        if member.index() >= self.parent.len() {
            return Vec::new();
        }
        let root = self.find(member.0);
        (0..self.parent.len() as u32).filter(|&v| self.find(v) == root).map(VertexId).collect()
    }

    fn homed_components(&mut self, shard: usize) -> Vec<(VertexId, usize)> {
        (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] == v && self.home[v as usize] == shard)
            .map(|root| (VertexId(root), self.size[root as usize] as usize))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn hash_routing_is_deterministic_and_in_range() {
        let mut p = HashPartitioner;
        for i in 0..100u32 {
            let a = p.route(v(i), v(i + 1), 8);
            let b = p.route(v(i), v(i + 7), 8);
            assert_eq!(a, b, "route depends only on the source");
            assert!(a < 8);
        }
    }

    #[test]
    fn hash_routing_spreads_sources() {
        let mut p = HashPartitioner;
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            counts[p.route(v(i), v(0), 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "a shard starved: {counts:?}");
        }
    }

    #[test]
    fn connected_component_stays_on_one_shard() {
        let mut p = ConnectivityPartitioner::new(1000);
        // A ring over 50..54 interleaved with unrelated noise edges.
        let first = p.route(v(50), v(51), 4);
        let mut noise_routes = Vec::new();
        for i in 0..10u32 {
            noise_routes.push(p.route(v(i), v(i + 1), 4));
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    assert_eq!(p.route(v(a), v(b), 4), first, "ring split across shards");
                }
            }
        }
        assert_eq!(p.component_size(v(52)), 4);
    }

    #[test]
    fn new_components_pick_least_loaded_shard() {
        let mut p = ConnectivityPartitioner::new(1000);
        let mut seen = std::collections::HashSet::new();
        // 8 disjoint pairs over 4 shards: loads must stay balanced, so all
        // 4 shards get used.
        for i in 0..8u32 {
            seen.insert(p.route(v(i * 2), v(i * 2 + 1), 4));
        }
        assert_eq!(seen.len(), 4, "least-loaded assignment must rotate shards");
    }

    #[test]
    fn merged_components_keep_the_larger_sides_home() {
        let mut p = ConnectivityPartitioner::new(1000);
        let home_a = p.route(v(0), v(1), 4);
        let _home_b = p.route(v(10), v(11), 4);
        // Equal sizes: the first (src-side) root survives and keeps its
        // home; subsequent edges of both sides follow it.
        let bridged = p.route(v(1), v(10), 4);
        assert_eq!(bridged, home_a);
        assert_eq!(bridged, p.route(v(11), v(0), 4));

        // Unequal sizes: the larger component's home wins even when the
        // smaller one was homed first.
        let mut p = ConnectivityPartitioner::new(1000);
        let _small_home = p.route(v(0), v(1), 4); // size-2 component, homed first
        let big_home = p.route(v(20), v(21), 4);
        p.route(v(21), v(22), 4);
        p.route(v(22), v(23), 4); // size-4 component
        let merged = p.route(v(0), v(20), 4);
        assert_eq!(merged, big_home);
        assert_eq!(merged, p.route(v(1), v(23), 4));
    }

    #[test]
    fn oversized_components_spill_to_hash() {
        let mut p = ConnectivityPartitioner::new(4);
        // Build a star of 6 vertices: component exceeds max_component=4.
        for i in 1..6u32 {
            p.route(v(0), v(i), 4);
        }
        assert!(p.component_size(v(0)) > 4);
        let mut h = HashPartitioner;
        // Post-spill edges route exactly as the hash policy would.
        assert_eq!(p.route(v(0), v(6), 4), h.route(v(0), v(6), 4));
        assert_eq!(p.route(v(3), v(7), 4), h.route(v(3), v(7), 4));
    }

    #[test]
    fn zero_spill_bound_degenerates_to_hash() {
        let mut p = ConnectivityPartitioner::new(0);
        let mut h = HashPartitioner;
        for i in 0..50u32 {
            assert_eq!(p.route(v(i), v(i + 1), 8), h.route(v(i), v(i + 1), 8));
        }
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(PartitionStrategy::from_name("hash"), Some(PartitionStrategy::HashBySource));
        assert_eq!(
            PartitionStrategy::from_name("Connectivity"),
            Some(PartitionStrategy::Connectivity)
        );
        assert_eq!(PartitionStrategy::from_name("bogus"), None);
    }

    #[test]
    fn strategy_parsing_accepts_explicit_spill_bound() {
        assert_eq!(
            PartitionStrategy::from_name("conn:128"),
            Some(PartitionStrategy::ConnectivityWithSpill { max_component: 128 })
        );
        assert_eq!(
            PartitionStrategy::from_name("Connectivity:4096"),
            Some(PartitionStrategy::ConnectivityWithSpill { max_component: 4096 })
        );
        // 0 is legal: it degenerates to hash routing (never pin).
        assert_eq!(
            PartitionStrategy::from_name("conn:0"),
            Some(PartitionStrategy::ConnectivityWithSpill { max_component: 0 })
        );
        assert_eq!(PartitionStrategy::from_name("conn:"), None);
        assert_eq!(PartitionStrategy::from_name("conn:abc"), None);
        assert_eq!(PartitionStrategy::from_name("hash:4"), None);
    }

    #[test]
    fn spill_traffic_does_not_bias_least_loaded_pinning() {
        let mut p = ConnectivityPartitioner::new(2);
        // Grow a star past the bound: its edges spill to hash routing.
        for i in 1..40u32 {
            p.route(v(0), v(i), 4);
        }
        let spilled: u64 = p.spilled_load().iter().sum();
        assert!(spilled > 0, "the star must have spilled");
        // Spilled edges land in spill_load, not load: pinned load still
        // only counts the pre-spill pinned routes.
        let pinned: u64 = p.pinned_load().iter().sum();
        assert_eq!(pinned + spilled, 39);
        assert!(pinned <= 2, "only the pre-spill edges may count as pinned load");
        // Fresh components now rotate over all shards — the hash skew of
        // the giant component must not pin every newcomer to one shard.
        let mut seen = std::collections::HashSet::new();
        for i in 0..8u32 {
            seen.insert(p.route(v(1000 + i * 2), v(1001 + i * 2), 4));
        }
        assert_eq!(seen.len(), 4, "spill load must not bias pinning");
    }

    #[test]
    fn crossing_the_spill_bound_clears_the_stale_home() {
        let mut p = ConnectivityPartitioner::new(3);
        let home = p.route(v(0), v(1), 4);
        assert_eq!(p.home_of(v(0)), Some(home));
        let before = p.routing_epoch();
        // Grow past the bound: home must be cleared, not left stale.
        p.route(v(0), v(2), 4);
        p.route(v(0), v(3), 4);
        p.route(v(0), v(4), 4);
        assert!(p.component_size(v(0)) > 3);
        assert_eq!(p.home_of(v(0)), None, "spilled component kept a stale home");
        assert!(p.routing_epoch() > before, "clearing a home is a routing-table change");
    }

    #[test]
    fn shrinking_the_shard_count_repins_in_range() {
        let mut p = ConnectivityPartitioner::new(1000);
        // Pin 8 disjoint components across 8 shards, so at least one
        // home is >= 2.
        for i in 0..8u32 {
            p.route(v(i * 2), v(i * 2 + 1), 8);
        }
        let max_home = (0..8u32).map(|i| p.home_of(v(i * 2)).unwrap()).max().unwrap();
        assert!(max_home >= 2, "setup must pin something beyond shard 1");
        // Reuse with 2 shards: every route must stay in range and the
        // out-of-range homes must be re-pinned (not returned verbatim).
        for i in 0..8u32 {
            let s = p.route(v(i * 2), v(i * 2 + 1), 2);
            assert!(s < 2, "pinned home {s} out of range after shard-count shrink");
            assert!(p.home_of(v(i * 2)).unwrap() < 2);
        }
    }

    #[test]
    fn home_vs_home_merge_records_a_strand_event() {
        let mut p = ConnectivityPartitioner::new(1000);
        let home_a = p.route(v(0), v(1), 4);
        p.route(v(1), v(2), 4); // size-3 component A
        let home_b = p.route(v(10), v(11), 4); // size-2 component B
        assert_ne!(home_a, home_b);
        assert_eq!(p.pending_strands(), 0);
        // Bridge: A (larger) survives, B's earlier edges are stranded.
        let merged = p.route(v(2), v(10), 4);
        assert_eq!(merged, home_a);
        assert_eq!(p.pending_strands(), 1);
        let events = p.drain_strands(4);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stranded_shard, home_b);
        assert_eq!(p.home_of(events[0].member), Some(home_a));
        assert_eq!(p.pending_strands(), 0);
        // Repeated merges into the same component dedupe at drain.
        let home_c = p.route(v(20), v(21), 4);
        let home_d = p.route(v(30), v(31), 4);
        p.route(v(0), v(20), 4);
        p.route(v(0), v(30), 4);
        let events = p.drain_strands(4);
        let mut shards: Vec<usize> = events.iter().map(|e| e.stranded_shard).collect();
        shards.sort_unstable();
        let mut want = vec![home_c, home_d];
        want.retain(|&s| s != home_a);
        want.sort_unstable();
        assert_eq!(shards, want);
    }

    #[test]
    fn drained_strands_skip_rehomed_and_spilled_components() {
        let mut p = ConnectivityPartitioner::new(6);
        let home_a = p.route(v(0), v(1), 4);
        let home_b = p.route(v(10), v(11), 4);
        p.route(v(1), v(10), 4);
        assert_eq!(p.pending_strands(), 1);
        // Rehome the merged component onto the stranded shard: the event
        // is now moot and must be dropped.
        assert_eq!(p.rehome(v(0), home_b), Some(home_a));
        assert!(p.drain_strands(4).is_empty());

        // A strand event on a component that later spills is dropped too.
        let mut p = ConnectivityPartitioner::new(4);
        p.route(v(0), v(1), 4);
        p.route(v(10), v(11), 4);
        p.route(v(1), v(10), 4); // merge: strand recorded (size 4)
        assert_eq!(p.pending_strands(), 1);
        p.route(v(0), v(20), 4); // size 5 > bound: spills, home cleared
        assert!(p.drain_strands(4).is_empty());
    }

    #[test]
    fn rehome_bumps_the_routing_epoch_and_redirects_traffic() {
        let mut p = ConnectivityPartitioner::new(1000);
        let home = p.route(v(0), v(1), 4);
        let before = p.routing_epoch();
        let target = (home + 1) % 4;
        assert_eq!(p.rehome(v(1), target), Some(home));
        assert_eq!(p.routing_epoch(), before + 1);
        assert_eq!(p.route(v(0), v(1), 4), target, "traffic must follow the new home");
        // Rehoming to the current home is a no-op (no epoch bump).
        let epoch = p.routing_epoch();
        assert_eq!(p.rehome(v(0), target), Some(target));
        assert_eq!(p.routing_epoch(), epoch);
        // Unknown vertices are not rehomeable.
        assert_eq!(p.rehome(v(9999), 0), None);
    }

    #[test]
    fn component_introspection_lists_members_and_homes() {
        let mut p = ConnectivityPartitioner::new(1000);
        let home_a = p.route(v(0), v(1), 2);
        p.route(v(1), v(2), 2);
        let home_b = p.route(v(5), v(6), 2);
        assert_ne!(home_a, home_b);
        let mut members = p.component_members(v(2));
        members.sort_unstable_by_key(|m| m.0);
        assert_eq!(members, vec![v(0), v(1), v(2)]);
        assert!(p.component_members(v(9999)).is_empty());
        let on_a = p.homed_components(home_a);
        assert!(on_a.iter().any(|&(root, size)| size == 3 && p.find(root.0) == p.find(0)));
        let on_b = p.homed_components(home_b);
        assert_eq!(on_b.len(), 1);
        assert_eq!(on_b[0].1, 2);
    }

    #[test]
    fn stateless_partitioners_report_no_rebalancing_surface() {
        let mut p = HashPartitioner;
        assert_eq!(Partitioner::routing_epoch(&p), 0);
        assert_eq!(p.pending_strands(), 0);
        assert!(p.drain_strands(4).is_empty());
        assert_eq!(p.home_of(v(0)), None);
        assert_eq!(p.rehome(v(0), 1), None);
        assert!(p.component_members(v(0)).is_empty());
        assert!(p.homed_components(0).is_empty());
    }
}
