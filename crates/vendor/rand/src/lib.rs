//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! crate reimplements exactly the trait surface the workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//! Generated streams are deterministic per seed but do **not** match the
//! real rand crate's value sequences; everything in the workspace treats
//! seeded randomness as an opaque deterministic source, so only
//! reproducibility matters, not the exact values.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a generator's full output range (the
/// `Standard` distribution of the real crate).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that can produce one uniform sample (`Range`/`RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value in the range; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$ty as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A value uniform over `T`'s standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform in `range`.
    #[inline]
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_single(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(crate::SampleRange::sample_single(0..self.len(), rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step: decent dispersion for the tests below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let a = rng.gen_range(3..16u32);
            assert!((3..16).contains(&a));
            let b = rng.gen_range(1..=6usize);
            assert!((1..=6).contains(&b));
            let c = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&c));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_receivers_work() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Counter(7);
        let _ = takes_dynish(&mut rng);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v != sorted, "50 elements almost surely move");
    }
}
