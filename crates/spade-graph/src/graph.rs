//! The dynamic directed weighted graph (`G = (V, E)` of paper §2.1).
//!
//! Design notes:
//!
//! * **Adjacency**: per-vertex out- and in-lists of `(neighbor, weight)`
//!   pairs. The peeling algorithms need *both* directions of a vertex's
//!   incident edges (Eq. 2 sums `c_ij` over out-edges and `c_ji` over
//!   in-edges within the remaining set), so both lists are maintained.
//! * **Parallel transactions**: repeated transactions over the same ordered
//!   pair accumulate into one weighted edge (`c_ij += w`). All three density
//!   metrics (DG/DW/FD) are linear in edge weight, so accumulation is
//!   semantically equivalent to parallel edges while keeping adjacency lists
//!   deduplicated. An O(1) edge index maps `(src, dst)` to the positions of
//!   the edge inside both adjacency lists.
//! * **Deletion** (needed by the Appendix C.1 extension) swap-removes from
//!   both lists and patches the index entries of the displaced elements,
//!   staying O(1).
//! * **Running aggregates**: `f(V)` (total suspiciousness, Eq. 1) and the
//!   per-vertex incident weight `w_u(V)` (the peeling weight against the
//!   full vertex set, Eq. 2 with `S = S_0 = V`) are maintained on every
//!   mutation; the edge-grouping classifier (Definition 4.1) reads
//!   `w_u(S_0)` in O(1).

use crate::error::GraphError;
use crate::hash::FxHashMap;
use crate::id::{EdgeRef, VertexId};
use crate::Result;

/// An adjacency-list entry: the neighboring vertex and the edge weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The endpoint on the other side of the edge.
    pub v: VertexId,
    /// The accumulated suspiciousness weight `c` of the edge.
    pub w: f64,
}

/// Positions of one directed edge inside the two adjacency lists.
#[derive(Clone, Copy, Debug)]
struct EdgeSlots {
    /// Index into `out_adj[src]`.
    out_pos: u32,
    /// Index into `in_adj[dst]`.
    in_pos: u32,
}

/// Outcome of [`DynamicGraph::insert_edge`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeInsertion {
    /// `true` if the ordered pair was not previously connected.
    pub is_new: bool,
    /// The edge's accumulated weight after this insertion.
    pub weight_after: f64,
}

/// A directed weighted multigraph-by-accumulation over dense vertex ids.
#[derive(Clone, Debug, Default)]
pub struct DynamicGraph {
    out_adj: Vec<Vec<Neighbor>>,
    in_adj: Vec<Vec<Neighbor>>,
    vertex_weight: Vec<f64>,
    /// `w_u(V)` = `a_u` + total weight of all edges incident to `u`.
    incident_weight: Vec<f64>,
    edge_index: FxHashMap<u64, EdgeSlots>,
    num_edges: usize,
    /// `f(V)`: sum of all vertex weights plus all edge weights (Eq. 1).
    total_weight: f64,
}

impl DynamicGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        DynamicGraph {
            out_adj: Vec::with_capacity(n),
            in_adj: Vec::with_capacity(n),
            vertex_weight: Vec::with_capacity(n),
            incident_weight: Vec::with_capacity(n),
            edge_index: FxHashMap::default(),
            num_edges: 0,
            total_weight: 0.0,
        }
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.vertex_weight.len()
    }

    /// Number of (accumulated) directed edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `f(V)`: the total suspiciousness of the whole graph (Eq. 1).
    #[inline(always)]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Appends a new vertex with suspiciousness weight `weight` and returns
    /// its id.
    pub fn add_vertex(&mut self, weight: f64) -> Result<VertexId> {
        if !weight.is_finite() {
            return Err(GraphError::NonFiniteWeight { context: "vertex weight" });
        }
        let id = VertexId::from_index(self.num_vertices());
        if weight < 0.0 {
            return Err(GraphError::NegativeVertexWeight { vertex: id, weight });
        }
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.vertex_weight.push(weight);
        self.incident_weight.push(weight);
        self.total_weight += weight;
        Ok(id)
    }

    /// Grows the vertex set (with zero-weight vertices) so that `v` exists.
    ///
    /// Returns the number of vertices created. Streaming ingestion uses this
    /// to materialize endpoints on first sight; the caller then assigns the
    /// vertex suspiciousness via [`set_vertex_weight`](Self::set_vertex_weight).
    pub fn ensure_vertex(&mut self, v: VertexId) -> usize {
        let needed = v.index() + 1;
        let have = self.num_vertices();
        if needed <= have {
            return 0;
        }
        let created = needed - have;
        self.out_adj.resize_with(needed, Vec::new);
        self.in_adj.resize_with(needed, Vec::new);
        self.vertex_weight.resize(needed, 0.0);
        self.incident_weight.resize(needed, 0.0);
        created
    }

    /// Returns `true` if `v` is a valid vertex id.
    #[inline(always)]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.num_vertices()
    }

    #[inline]
    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if self.contains_vertex(v) {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfBounds { vertex: v, num_vertices: self.num_vertices() })
        }
    }

    /// The suspiciousness weight `a_u` of vertex `u`.
    #[inline(always)]
    pub fn vertex_weight(&self, u: VertexId) -> f64 {
        self.vertex_weight[u.index()]
    }

    /// Sets the suspiciousness weight of `u`, keeping aggregates consistent.
    pub fn set_vertex_weight(&mut self, u: VertexId, weight: f64) -> Result<()> {
        self.check_vertex(u)?;
        if !weight.is_finite() {
            return Err(GraphError::NonFiniteWeight { context: "vertex weight" });
        }
        if weight < 0.0 {
            return Err(GraphError::NegativeVertexWeight { vertex: u, weight });
        }
        let old = self.vertex_weight[u.index()];
        self.vertex_weight[u.index()] = weight;
        self.incident_weight[u.index()] += weight - old;
        self.total_weight += weight - old;
        Ok(())
    }

    /// `w_u(S_0)`: the peeling weight of `u` against the full vertex set —
    /// `a_u` plus the weight of every incident edge, both directions (Eq. 2).
    #[inline(always)]
    pub fn incident_weight(&self, u: VertexId) -> f64 {
        self.incident_weight[u.index()]
    }

    /// The accumulated weight of directed edge `(src, dst)`, if present.
    #[inline]
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<f64> {
        let slots = self.edge_index.get(&EdgeRef::new(src, dst).packed())?;
        Some(self.out_adj[src.index()][slots.out_pos as usize].w)
    }

    /// Returns `true` if the directed edge `(src, dst)` exists.
    #[inline]
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_index.contains_key(&EdgeRef::new(src, dst).packed())
    }

    /// Inserts (or accumulates onto) the directed edge `(src, dst)` with
    /// weight `w > 0`. Both endpoints must already exist.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, w: f64) -> Result<EdgeInsertion> {
        self.check_vertex(src)?;
        self.check_vertex(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop { vertex: src });
        }
        if !w.is_finite() {
            return Err(GraphError::NonFiniteWeight { context: "edge weight" });
        }
        if w <= 0.0 {
            return Err(GraphError::NonPositiveEdgeWeight { src, dst, weight: w });
        }
        let key = EdgeRef::new(src, dst).packed();
        let result = match self.edge_index.get(&key) {
            Some(&slots) => {
                let out = &mut self.out_adj[src.index()][slots.out_pos as usize];
                out.w += w;
                let after = out.w;
                self.in_adj[dst.index()][slots.in_pos as usize].w = after;
                EdgeInsertion { is_new: false, weight_after: after }
            }
            None => {
                let out_pos = self.out_adj[src.index()].len() as u32;
                let in_pos = self.in_adj[dst.index()].len() as u32;
                self.out_adj[src.index()].push(Neighbor { v: dst, w });
                self.in_adj[dst.index()].push(Neighbor { v: src, w });
                self.edge_index.insert(key, EdgeSlots { out_pos, in_pos });
                self.num_edges += 1;
                EdgeInsertion { is_new: true, weight_after: w }
            }
        };
        self.incident_weight[src.index()] += w;
        self.incident_weight[dst.index()] += w;
        self.total_weight += w;
        Ok(result)
    }

    /// Removes `amount` of weight from the directed edge `(src, dst)`,
    /// deleting the edge entirely when the remainder would be zero (or
    /// within `1e-12` of it, absorbing accumulated float error). Returns
    /// the weight actually removed.
    ///
    /// This is the transaction-granularity deletion the time-window
    /// extension needs: one expired transaction leaves the rest of an
    /// accumulated edge in place.
    pub fn decrease_edge(&mut self, src: VertexId, dst: VertexId, amount: f64) -> Result<f64> {
        let current = self.edge_weight(src, dst).ok_or(GraphError::EdgeNotFound { src, dst })?;
        if !amount.is_finite() || amount <= 0.0 {
            return Err(GraphError::NonPositiveEdgeWeight { src, dst, weight: amount });
        }
        if amount >= current - 1e-12 {
            return self.delete_edge(src, dst);
        }
        let slots = self.edge_index[&EdgeRef::new(src, dst).packed()];
        self.out_adj[src.index()][slots.out_pos as usize].w = current - amount;
        self.in_adj[dst.index()][slots.in_pos as usize].w = current - amount;
        self.incident_weight[src.index()] -= amount;
        self.incident_weight[dst.index()] -= amount;
        self.total_weight -= amount;
        Ok(amount)
    }

    /// Removes the directed edge `(src, dst)` entirely, returning its
    /// accumulated weight (Appendix C.1 substrate).
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId) -> Result<f64> {
        self.check_vertex(src)?;
        self.check_vertex(dst)?;
        let key = EdgeRef::new(src, dst).packed();
        let slots = self.edge_index.remove(&key).ok_or(GraphError::EdgeNotFound { src, dst })?;
        let w = self.out_adj[src.index()][slots.out_pos as usize].w;

        // Swap-remove from the out-list of `src`, patching the displaced
        // edge's index entry if one moved into the vacated slot.
        let out_list = &mut self.out_adj[src.index()];
        out_list.swap_remove(slots.out_pos as usize);
        if (slots.out_pos as usize) < out_list.len() {
            let moved = out_list[slots.out_pos as usize].v;
            let moved_key = EdgeRef::new(src, moved).packed();
            self.edge_index
                .get_mut(&moved_key)
                .expect("edge index out-entry missing for displaced edge")
                .out_pos = slots.out_pos;
        }

        // Same for the in-list of `dst`.
        let in_list = &mut self.in_adj[dst.index()];
        in_list.swap_remove(slots.in_pos as usize);
        if (slots.in_pos as usize) < in_list.len() {
            let moved = in_list[slots.in_pos as usize].v;
            let moved_key = EdgeRef::new(moved, dst).packed();
            self.edge_index
                .get_mut(&moved_key)
                .expect("edge index in-entry missing for displaced edge")
                .in_pos = slots.in_pos;
        }

        self.incident_weight[src.index()] -= w;
        self.incident_weight[dst.index()] -= w;
        self.total_weight -= w;
        self.num_edges -= 1;
        Ok(w)
    }

    /// Out-neighbors of `u` (edges `u -> v`).
    #[inline(always)]
    pub fn out_neighbors(&self, u: VertexId) -> &[Neighbor] {
        &self.out_adj[u.index()]
    }

    /// In-neighbors of `u` (edges `v -> u`).
    #[inline(always)]
    pub fn in_neighbors(&self, u: VertexId) -> &[Neighbor] {
        &self.in_adj[u.index()]
    }

    /// All incident edges of `u` as `(neighbor, weight)` pairs, out-edges
    /// first. A vertex connected in both directions appears twice, once per
    /// directed edge — exactly the multiset Eq. 2 sums over.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = Neighbor> + '_ {
        self.out_adj[u.index()].iter().chain(self.in_adj[u.index()].iter()).copied()
    }

    /// Total degree (out + in) of `u`, counting accumulated edges once.
    #[inline(always)]
    pub fn degree(&self, u: VertexId) -> usize {
        self.out_adj[u.index()].len() + self.in_adj[u.index()].len()
    }

    /// Out-degree of `u`.
    #[inline(always)]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_adj[u.index()].len()
    }

    /// In-degree of `u`.
    #[inline(always)]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.in_adj[u.index()].len()
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterates over all directed edges as `(src, dst, weight)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        self.out_adj.iter().enumerate().flat_map(|(u, list)| {
            let u = VertexId::from_index(u);
            list.iter().map(move |n| (u, n.v, n.w))
        })
    }

    /// Sum of the weights of all edges between `u` and `v` in either
    /// direction — the amount a peeling weight changes when one of the two
    /// leaves the other's remaining set.
    #[inline]
    pub fn mutual_weight(&self, u: VertexId, v: VertexId) -> f64 {
        self.edge_weight(u, v).unwrap_or(0.0) + self.edge_weight(v, u).unwrap_or(0.0)
    }

    /// Exhaustively checks internal invariants (index consistency, aggregate
    /// correctness). Intended for tests and debug assertions; O(V + E).
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.num_vertices();
        assert_eq!(self.out_adj.len(), n);
        assert_eq!(self.in_adj.len(), n);
        assert_eq!(self.incident_weight.len(), n);

        let mut edge_count = 0usize;
        let mut total = self.vertex_weight.iter().sum::<f64>();
        let mut incident: Vec<f64> = self.vertex_weight.clone();
        for (u, list) in self.out_adj.iter().enumerate() {
            let u = VertexId::from_index(u);
            for (pos, nb) in list.iter().enumerate() {
                edge_count += 1;
                total += nb.w;
                incident[u.index()] += nb.w;
                incident[nb.v.index()] += nb.w;
                let slots = self
                    .edge_index
                    .get(&EdgeRef::new(u, nb.v).packed())
                    .unwrap_or_else(|| panic!("edge ({u} -> {}) missing from index", nb.v));
                assert_eq!(slots.out_pos as usize, pos, "out_pos stale for ({u} -> {})", nb.v);
                let mirror = self.in_adj[nb.v.index()][slots.in_pos as usize];
                assert_eq!(mirror.v, u, "in-list mirror mismatch for ({u} -> {})", nb.v);
                assert!(
                    (mirror.w - nb.w).abs() < 1e-9,
                    "in/out weight mismatch for ({u} -> {})",
                    nb.v
                );
            }
        }
        assert_eq!(edge_count, self.num_edges, "num_edges out of sync");
        assert_eq!(self.edge_index.len(), self.num_edges, "edge index size out of sync");
        assert!(
            (total - self.total_weight).abs() < 1e-6 * (1.0 + total.abs()),
            "total_weight out of sync: recomputed {total}, stored {}",
            self.total_weight
        );
        for (v, (&got, &want)) in incident.iter().zip(&self.incident_weight).enumerate() {
            assert!(
                (got - want).abs() < 1e-6 * (1.0 + got.abs()),
                "incident weight of v{v} out of sync: recomputed {got}, stored {want}"
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn graph_with_vertices(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for _ in 0..n {
            g.add_vertex(0.0).unwrap();
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = DynamicGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn add_vertices_accumulates_weight() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(1.5).unwrap();
        let b = g.add_vertex(0.0).unwrap();
        assert_eq!(a, v(0));
        assert_eq!(b, v(1));
        assert_eq!(g.total_weight(), 1.5);
        assert_eq!(g.vertex_weight(a), 1.5);
        assert_eq!(g.incident_weight(a), 1.5);
    }

    #[test]
    fn negative_vertex_weight_rejected() {
        let mut g = DynamicGraph::new();
        assert!(matches!(g.add_vertex(-1.0), Err(GraphError::NegativeVertexWeight { .. })));
        let a = g.add_vertex(1.0).unwrap();
        assert!(g.set_vertex_weight(a, -0.5).is_err());
        assert!(g.add_vertex(f64::NAN).is_err());
    }

    #[test]
    fn insert_edge_basic() {
        let mut g = graph_with_vertices(3);
        let r = g.insert_edge(v(0), v(1), 2.0).unwrap();
        assert!(r.is_new);
        assert_eq!(r.weight_after, 2.0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(v(0), v(1)), Some(2.0));
        assert_eq!(g.edge_weight(v(1), v(0)), None);
        assert_eq!(g.incident_weight(v(0)), 2.0);
        assert_eq!(g.incident_weight(v(1)), 2.0);
        assert_eq!(g.incident_weight(v(2)), 0.0);
        assert_eq!(g.total_weight(), 2.0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn insert_edge_accumulates_parallel_transactions() {
        let mut g = graph_with_vertices(2);
        g.insert_edge(v(0), v(1), 2.0).unwrap();
        let r = g.insert_edge(v(0), v(1), 3.0).unwrap();
        assert!(!r.is_new);
        assert_eq!(r.weight_after, 5.0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(v(0), v(1)), Some(5.0));
        assert_eq!(g.total_weight(), 5.0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn antiparallel_edges_are_distinct() {
        let mut g = graph_with_vertices(2);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(0), 4.0).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(v(0), v(1)), Some(1.0));
        assert_eq!(g.edge_weight(v(1), v(0)), Some(4.0));
        assert_eq!(g.mutual_weight(v(0), v(1)), 5.0);
        assert_eq!(g.incident_weight(v(0)), 5.0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn invalid_edges_rejected() {
        let mut g = graph_with_vertices(2);
        assert!(matches!(g.insert_edge(v(0), v(0), 1.0), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(
            g.insert_edge(v(0), v(1), 0.0),
            Err(GraphError::NonPositiveEdgeWeight { .. })
        ));
        assert!(matches!(
            g.insert_edge(v(0), v(1), -2.0),
            Err(GraphError::NonPositiveEdgeWeight { .. })
        ));
        assert!(matches!(
            g.insert_edge(v(0), v(5), 1.0),
            Err(GraphError::VertexOutOfBounds { .. })
        ));
        assert!(g.insert_edge(v(0), v(1), f64::INFINITY).is_err());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn ensure_vertex_grows() {
        let mut g = DynamicGraph::new();
        assert_eq!(g.ensure_vertex(v(4)), 5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.ensure_vertex(v(2)), 0);
        g.insert_edge(v(4), v(2), 1.0).unwrap();
        g.check_invariants().unwrap();
    }

    #[test]
    fn set_vertex_weight_updates_aggregates() {
        let mut g = graph_with_vertices(2);
        g.insert_edge(v(0), v(1), 2.0).unwrap();
        g.set_vertex_weight(v(0), 3.0).unwrap();
        assert_eq!(g.vertex_weight(v(0)), 3.0);
        assert_eq!(g.incident_weight(v(0)), 5.0);
        assert_eq!(g.total_weight(), 5.0);
        g.set_vertex_weight(v(0), 1.0).unwrap();
        assert_eq!(g.total_weight(), 3.0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn neighbors_yields_both_directions() {
        let mut g = graph_with_vertices(3);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(2), v(0), 2.0).unwrap();
        let nbrs: Vec<_> = g.neighbors(v(0)).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.contains(&Neighbor { v: v(1), w: 1.0 }));
        assert!(nbrs.contains(&Neighbor { v: v(2), w: 2.0 }));
        assert_eq!(g.degree(v(0)), 2);
        assert_eq!(g.out_degree(v(0)), 1);
        assert_eq!(g.in_degree(v(0)), 1);
    }

    #[test]
    fn delete_edge_roundtrip() {
        let mut g = graph_with_vertices(3);
        g.insert_edge(v(0), v(1), 2.0).unwrap();
        g.insert_edge(v(0), v(2), 3.0).unwrap();
        g.insert_edge(v(1), v(2), 4.0).unwrap();
        let w = g.delete_edge(v(0), v(1)).unwrap();
        assert_eq!(w, 2.0);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(v(0), v(1)), None);
        assert_eq!(g.edge_weight(v(0), v(2)), Some(3.0));
        assert_eq!(g.incident_weight(v(0)), 3.0);
        assert_eq!(g.incident_weight(v(1)), 4.0);
        assert_eq!(g.total_weight(), 7.0);
        g.check_invariants().unwrap();
        assert!(matches!(g.delete_edge(v(0), v(1)), Err(GraphError::EdgeNotFound { .. })));
    }

    #[test]
    fn delete_patches_displaced_index_entries() {
        // Force swap_remove to displace: delete the FIRST of several
        // out-edges of the same source.
        let mut g = graph_with_vertices(4);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(0), v(2), 2.0).unwrap();
        g.insert_edge(v(0), v(3), 3.0).unwrap();
        g.insert_edge(v(2), v(3), 5.0).unwrap();
        g.delete_edge(v(0), v(1)).unwrap();
        g.check_invariants().unwrap();
        // The displaced edge (0 -> 3) must still resolve correctly.
        assert_eq!(g.edge_weight(v(0), v(3)), Some(3.0));
        g.delete_edge(v(0), v(3)).unwrap();
        g.check_invariants().unwrap();
        assert_eq!(g.edge_weight(v(0), v(2)), Some(2.0));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn decrease_edge_partial_and_full() {
        let mut g = graph_with_vertices(2);
        g.insert_edge(v(0), v(1), 5.0).unwrap();
        assert_eq!(g.decrease_edge(v(0), v(1), 2.0).unwrap(), 2.0);
        assert_eq!(g.edge_weight(v(0), v(1)), Some(3.0));
        assert_eq!(g.incident_weight(v(0)), 3.0);
        assert_eq!(g.total_weight(), 3.0);
        g.check_invariants().unwrap();
        // Removing the remainder deletes the edge.
        assert_eq!(g.decrease_edge(v(0), v(1), 3.0).unwrap(), 3.0);
        assert_eq!(g.edge_weight(v(0), v(1)), None);
        assert_eq!(g.num_edges(), 0);
        g.check_invariants().unwrap();
        assert!(g.decrease_edge(v(0), v(1), 1.0).is_err());
    }

    #[test]
    fn decrease_edge_rejects_bad_amounts() {
        let mut g = graph_with_vertices(2);
        g.insert_edge(v(0), v(1), 5.0).unwrap();
        assert!(g.decrease_edge(v(0), v(1), 0.0).is_err());
        assert!(g.decrease_edge(v(0), v(1), -1.0).is_err());
        // Over-removal clamps to full deletion semantics.
        assert_eq!(g.decrease_edge(v(0), v(1), 99.0).unwrap(), 5.0);
    }

    #[test]
    fn iter_edges_covers_all() {
        let mut g = graph_with_vertices(3);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(2), 2.0).unwrap();
        let mut edges: Vec<_> = g.iter_edges().collect();
        edges.sort_by_key(|(s, d, _)| (s.0, d.0));
        assert_eq!(edges, vec![(v(0), v(1), 1.0), (v(1), v(2), 2.0)]);
    }

    #[test]
    fn clone_is_deep() {
        let mut g = graph_with_vertices(2);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        let snapshot = g.clone();
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        assert_eq!(snapshot.edge_weight(v(0), v(1)), Some(1.0));
        assert_eq!(g.edge_weight(v(0), v(1)), Some(2.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A random mutation script against a small vertex universe.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32, u32, f64),
        Delete(u32, u32),
        SetWeight(u32, f64),
    }

    fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0..n, 0..n, 0.1f64..10.0).prop_map(|(a, b, w)| Op::Insert(a, b, w)),
            2 => (0..n, 0..n).prop_map(|(a, b)| Op::Delete(a, b)),
            1 => (0..n, 0.0f64..5.0).prop_map(|(a, w)| Op::SetWeight(a, w)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn invariants_hold_under_arbitrary_mutation(
            ops in proptest::collection::vec(op_strategy(8), 1..200)
        ) {
            let mut g = DynamicGraph::new();
            for _ in 0..8 {
                g.add_vertex(0.0).unwrap();
            }
            for op in ops {
                match op {
                    Op::Insert(a, b, w) => {
                        let _ = g.insert_edge(VertexId(a), VertexId(b), w);
                    }
                    Op::Delete(a, b) => {
                        let _ = g.delete_edge(VertexId(a), VertexId(b));
                    }
                    Op::SetWeight(a, w) => {
                        g.set_vertex_weight(VertexId(a), w).unwrap();
                    }
                }
            }
            g.check_invariants().unwrap();
        }

        #[test]
        fn insert_then_delete_restores_weight_totals(
            edges in proptest::collection::vec((0u32..6, 0u32..6, 0.5f64..4.0), 1..40)
        ) {
            let mut g = DynamicGraph::new();
            for _ in 0..6 {
                g.add_vertex(1.0).unwrap();
            }
            let base_total = g.total_weight();
            let mut inserted = Vec::new();
            for (a, b, w) in edges {
                if g.insert_edge(VertexId(a), VertexId(b), w).is_ok() {
                    inserted.push((a, b));
                }
            }
            inserted.sort_unstable();
            inserted.dedup();
            for (a, b) in inserted {
                g.delete_edge(VertexId(a), VertexId(b)).unwrap();
            }
            prop_assert_eq!(g.num_edges(), 0);
            prop_assert!((g.total_weight() - base_total).abs() < 1e-9);
            g.check_invariants().unwrap();
        }
    }
}
