//! Figure 9b — degree distribution of the Grab-like transaction graph.
//!
//! Prints a log-bucketed frequency histogram plus the fitted power-law
//! exponent; the paper's figure shows the same frequency-vs-degree decay.
//!
//! `cargo run -p spade-bench --release --bin fig9b_degree_dist`

use spade_bench::grab_datasets;
use spade_core::{SpadeConfig, SpadeEngine, UnweightedDensity};
use spade_graph::stats::DegreeDistribution;
use spade_metrics::Table;

fn main() {
    let data = &grab_datasets()[0];
    let engine = SpadeEngine::bootstrap(
        UnweightedDensity,
        SpadeConfig::default(),
        data.initial.iter().chain(&data.increments).map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap");
    let dist = DegreeDistribution::of(engine.graph());

    println!(
        "Figure 9b: degree distribution of {} (|V|={}, |E|={})\n",
        data.name,
        engine.graph().num_vertices(),
        engine.graph().num_edges()
    );
    let mut table = Table::new(["degree <=", "frequency", "bar"]);
    let buckets = dist.log_buckets(14);
    let max_count = buckets.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (hi, count) in &buckets {
        let width = (40.0 * (*count as f64 + 1.0).ln() / (max_count as f64 + 1.0).ln()) as usize;
        table.row([hi.to_string(), count.to_string(), "#".repeat(width)]);
    }
    table.print();
    match dist.power_law_exponent() {
        Some(alpha) => {
            println!("\nfitted power-law exponent alpha = {alpha:.2} (heavy tail, as in the paper)")
        }
        None => println!("\n(not enough buckets for a power-law fit)"),
    }
}
