//! Criterion: ingest throughput of the sharded parallel runtime,
//! sweeping shard counts 1/2/4/8 over the benign-heavy power-law
//! marketplace stream with an injected fraud ring.
//!
//! Two routing policies are swept: stateless hash-by-source (pure
//! scaling; communities may split) and the connectivity partitioner with
//! a spill bound (communities co-resident, giant component hash-spread).
//! Each iteration replays the full stream through a freshly spawned
//! runtime and drains it on shutdown, so the measured time covers ingest,
//! detection maintenance and the fan-in.
//!
//! Scaling requires cores: on a host with fewer cores than shards the
//! sweep degenerates to measuring fan-out overhead (the workers time-
//! slice one CPU). The harness prints the detected parallelism so the
//! numbers can be read in context.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spade_core::metric::WeightedDensity;
use spade_core::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use spade_core::stream::StreamEdge;
use spade_gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};

/// Benign-heavy workload: Zipf marketplace traffic plus one injected
/// dense ring per pattern (the Fig. 9a shape at micro scale). Sized
/// relative to `SPADE_SCALE`/`SPADE_QUICK` like the dataset-backed
/// benches, so smoke runs stay small.
fn workload() -> Vec<StreamEdge> {
    // env_scale() defaults to 0.01; these bases put the default run at
    // 1500 customers / 6000 transactions and SPADE_QUICK at a tenth.
    let scale = spade_bench::env_scale() / 0.01;
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: ((1_500.0 * scale) as usize).max(100),
        merchants: ((500.0 * scale) as usize).max(30),
        transactions: ((6_000.0 * scale) as usize).max(500),
        seed: 0x5AD5,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: ((150.0 * scale) as usize).max(40),
            amount: 300.0,
            ..Default::default()
        },
    );
    injected.edges
}

fn replay(edges: &[StreamEdge], shards: usize, strategy: PartitionStrategy) -> u64 {
    let config = ShardedConfig {
        shards,
        queue_capacity: 4096,
        grouping: None,
        strategy,
        top_k: shards,
        ..Default::default()
    };
    let service = ShardedSpadeService::spawn(WeightedDensity, config);
    for e in edges {
        service.submit(e.src, e.dst, e.raw);
    }
    // Shutdown drains every queue: the iteration covers all processing.
    service.shutdown().total_updates
}

fn bench_shard_sweep(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!("sharded_ingest: {cores} hardware threads available (expect scaling only up to that)");
    let edges = workload();
    let mut group = c.benchmark_group("sharded_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("hash", shards), |b| {
            b.iter(|| {
                let n = replay(&edges, shards, PartitionStrategy::HashBySource);
                assert_eq!(n, edges.len() as u64);
            });
        });
    }
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("connectivity", shards), |b| {
            b.iter(|| {
                let n = replay(
                    &edges,
                    shards,
                    PartitionStrategy::ConnectivityWithSpill { max_component: 256 },
                );
                assert_eq!(n, edges.len() as u64);
            });
        });
    }
    group.finish();
}

/// One full cross-shard repair pass over a live hash-routed runtime:
/// export a candidate region per shard, union overlapping regions,
/// re-peel through the scratch engine, publish. The stream is replayed
/// once per shard count; each iteration measures the pass alone — the
/// cost a scheduler pays every time overlap or staleness triggers.
fn bench_repair_pass(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("cross_shard_repair");
    group.sample_size(10);
    for shards in [2usize, 4, 8] {
        let config = ShardedConfig {
            shards,
            queue_capacity: 4096,
            strategy: PartitionStrategy::HashBySource,
            top_k: shards,
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        for e in &edges {
            service.submit(e.src, e.dst, e.raw);
        }
        // One forced pass drains every queue, so iterations measure
        // repair over a settled graph rather than racing ingest.
        let settled = service.repair();
        assert!(settled.detection.density >= settled.baseline_density);
        group.bench_function(BenchmarkId::new("repair", shards), |b| {
            b.iter(|| {
                let repaired = service.repair();
                assert!(repaired.detection.size > 0);
            });
        });
        service.shutdown();
    }
    group.finish();
}

/// Component migration latency: the cost of one extract → evict → replay
/// cycle (what a strand repair or load-balance move pays per component),
/// and the cost of the scheduler's idle check. The stream is replayed
/// once per shard count through the connectivity partitioner; each
/// migration iteration ping-pongs the dominant fraud component between
/// two shards, so every hop moves the full slice over live engines.
fn bench_migration_pass(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("component_migration");
    group.sample_size(10);
    for shards in [2usize, 4, 8] {
        let config = ShardedConfig {
            shards,
            queue_capacity: 4096,
            strategy: PartitionStrategy::ConnectivityWithSpill { max_component: 4096 },
            top_k: shards,
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        for e in &edges {
            service.submit(e.src, e.dst, e.raw);
        }
        // Settle: one rebalance drains every queue and repairs any
        // strands the replay produced, so iterations measure migration
        // over a stable fleet.
        let _ = service.rebalance();
        let member = service.current_detection().best.members.first().copied();
        let Some(member) = member else {
            service.shutdown();
            continue;
        };
        let mut target = 0usize;
        group.bench_function(BenchmarkId::new("migrate_component", shards), |b| {
            b.iter(|| {
                let moved = service.migrate_component(member, target);
                target = (target + 1) % shards;
                moved
            });
        });
        group.bench_function(BenchmarkId::new("idle_check", shards), |b| {
            b.iter(|| {
                assert!(service.rebalance_if_needed().is_none());
            });
        });
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_shard_sweep, bench_repair_pass, bench_migration_pass);
criterion_main!(benches);
