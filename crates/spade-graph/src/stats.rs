//! Graph summary statistics and degree distributions (paper Fig. 9b,
//! Table 3).

use crate::graph::DynamicGraph;

/// Summary statistics in the format of the paper's Table 3.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct GraphStats {
    /// `|V|`.
    pub num_vertices: usize,
    /// `|E|` (accumulated directed edges).
    pub num_edges: usize,
    /// Average total degree `|E| / |V|` — the paper reports edge-per-vertex.
    pub avg_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// `f(V)`.
    pub total_weight: f64,
}

impl GraphStats {
    /// Computes summary statistics for `g`.
    pub fn of(g: &DynamicGraph) -> Self {
        let n = g.num_vertices();
        let max_degree = g.vertices().map(|u| g.degree(u)).max().unwrap_or(0);
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            avg_degree: if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 },
            max_degree,
            total_weight: g.total_weight(),
        }
    }
}

/// A degree-frequency histogram: `frequency[d]` = number of vertices with
/// total degree `d` (Fig. 9b plots frequency against degree).
#[derive(Clone, Debug, Default)]
pub struct DegreeDistribution {
    /// `frequency[d]` = count of vertices of degree `d`.
    pub frequency: Vec<usize>,
}

impl DegreeDistribution {
    /// Computes the total-degree distribution of `g`.
    pub fn of(g: &DynamicGraph) -> Self {
        let mut frequency = Vec::new();
        for u in g.vertices() {
            let d = g.degree(u);
            if d >= frequency.len() {
                frequency.resize(d + 1, 0);
            }
            frequency[d] += 1;
        }
        DegreeDistribution { frequency }
    }

    /// Number of vertices covered by the distribution.
    pub fn num_vertices(&self) -> usize {
        self.frequency.iter().sum()
    }

    /// Maximum observed degree.
    pub fn max_degree(&self) -> usize {
        self.frequency.len().saturating_sub(1)
    }

    /// Estimates the power-law exponent `alpha` of `P(d) ~ d^-alpha` by a
    /// least-squares fit of `log freq` against `log degree` over non-zero
    /// buckets with `d >= 1`. Returns `None` when fewer than two non-empty
    /// buckets exist.
    ///
    /// This is the standard quick diagnostic for "does the synthetic stream
    /// look like Fig. 9b" — heavy-tailed transaction graphs fit with
    /// `alpha` roughly in `[1.5, 3.5]`.
    pub fn power_law_exponent(&self) -> Option<f64> {
        let points: Vec<(f64, f64)> = self
            .frequency
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
            .collect();
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|(x, _)| x).sum();
        let sy: f64 = points.iter().map(|(_, y)| y).sum();
        let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        Some(-slope)
    }

    /// Down-samples the histogram into `buckets` logarithmic bins of
    /// `(bucket_max_degree, count)` pairs — convenient for terminal plots.
    pub fn log_buckets(&self, buckets: usize) -> Vec<(usize, usize)> {
        let max_d = self.max_degree().max(1);
        let mut out = Vec::with_capacity(buckets);
        let ratio = (max_d as f64).powf(1.0 / buckets.max(1) as f64);
        let mut lo = 1usize;
        let mut bound = 1.0f64;
        for _ in 0..buckets {
            bound *= ratio;
            let hi = (bound.round() as usize).clamp(lo, max_d);
            let count: usize = self.frequency
                [lo.min(self.frequency.len())..(hi + 1).min(self.frequency.len())]
                .iter()
                .sum();
            out.push((hi, count));
            lo = hi + 1;
            if lo > max_d {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::VertexId;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn star(n: u32) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for _ in 0..=n {
            g.add_vertex(0.0).unwrap();
        }
        for i in 1..=n {
            g.insert_edge(v(i), v(0), 1.0).unwrap();
        }
        g
    }

    #[test]
    fn stats_of_star() {
        let g = star(5);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 6);
        assert_eq!(s.num_edges, 5);
        assert_eq!(s.max_degree, 5);
        assert!((s.avg_degree - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degree_distribution_of_star() {
        let g = star(5);
        let d = DegreeDistribution::of(&g);
        assert_eq!(d.frequency[1], 5); // leaves
        assert_eq!(d.frequency[5], 1); // hub
        assert_eq!(d.num_vertices(), 6);
        assert_eq!(d.max_degree(), 5);
    }

    #[test]
    fn empty_graph_distribution() {
        let g = DynamicGraph::new();
        let d = DegreeDistribution::of(&g);
        assert_eq!(d.num_vertices(), 0);
        assert_eq!(d.power_law_exponent(), None);
    }

    #[test]
    fn power_law_exponent_recovers_synthetic_slope() {
        // Construct frequency[d] = C * d^-2 exactly and check the fit.
        let mut frequency = vec![0; 101];
        for (deg, slot) in frequency.iter_mut().enumerate().skip(1) {
            *slot = ((1e6 / (deg as f64).powi(2)).round()) as usize;
        }
        let d = DegreeDistribution { frequency };
        let alpha = d.power_law_exponent().unwrap();
        assert!((alpha - 2.0).abs() < 0.05, "alpha = {alpha}");
    }

    #[test]
    fn log_buckets_cover_all_degrees() {
        let g = star(64);
        let d = DegreeDistribution::of(&g);
        let buckets = d.log_buckets(6);
        let total: usize = buckets.iter().map(|(_, c)| c).sum();
        // All vertices of degree >= 1 are covered.
        assert_eq!(total, 65);
    }
}
