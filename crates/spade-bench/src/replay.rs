//! Replay runners: the measurement core shared by every table/figure
//! binary.
//!
//! Three execution modes mirror the paper's competitors:
//!
//! * **static baseline** (DG/DW/FD): one full from-scratch peel per
//!   detection round — its measured duration is both the per-edge cost of
//!   the static column and the detection period of the latency model;
//! * **incremental replay** (IncDG/IncDW/IncFD, batch size `|ΔE|`):
//!   Algorithm 2 once per batch;
//! * **grouped replay** (IncDGG/IncDWGG/IncFDG): Algorithm 3's buffer in
//!   front of the engine.
//!
//! Latency accounting uses the [`crate::clock::SimulatedClock`]: stream
//! timestamps give arrival times, measured wall-microseconds give
//! processing times (Fig. 8's definitions).

use crate::clock::SimulatedClock;
use spade_core::metric::{DensityMetric, Fraudar, UnweightedDensity, WeightedDensity};
use spade_core::{order::MinQueue, stream::StreamEdge};
use spade_core::{
    peel_with_queue, EdgeGrouper, GroupingConfig, ReorderStats, SpadeConfig, SpadeEngine,
};
use spade_graph::{CsrGraph, DynamicGraph, VertexId};
use spade_metrics::LatencyRecorder;
use std::time::Instant;

/// Which of the paper's three peeling semantics to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Unweighted dense subgraph (Charikar).
    Dg,
    /// Edge-weighted density.
    Dw,
    /// Fraudar.
    Fd,
}

impl MetricKind {
    /// All three, in paper order.
    pub const ALL: [MetricKind; 3] = [MetricKind::Dg, MetricKind::Dw, MetricKind::Fd];

    /// Static algorithm name ("DG").
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Dg => "DG",
            MetricKind::Dw => "DW",
            MetricKind::Fd => "FD",
        }
    }

    /// Incremental name ("IncDG").
    pub fn inc_name(self) -> &'static str {
        match self {
            MetricKind::Dg => "IncDG",
            MetricKind::Dw => "IncDW",
            MetricKind::Fd => "IncFD",
        }
    }

    /// Grouped name ("IncDGG").
    pub fn grouped_name(self) -> &'static str {
        match self {
            MetricKind::Dg => "IncDGG",
            MetricKind::Dw => "IncDWG",
            MetricKind::Fd => "IncFDG",
        }
    }

    /// Instantiates the metric.
    pub fn metric(self) -> AnyMetric {
        match self {
            MetricKind::Dg => AnyMetric::Dg(UnweightedDensity),
            MetricKind::Dw => AnyMetric::Dw(WeightedDensity),
            MetricKind::Fd => AnyMetric::Fd(Fraudar::new()),
        }
    }
}

/// Enum-dispatched metric so harness code stays monomorphic.
#[derive(Clone, Debug)]
pub enum AnyMetric {
    /// DG.
    Dg(UnweightedDensity),
    /// DW.
    Dw(WeightedDensity),
    /// FD.
    Fd(Fraudar),
}

impl DensityMetric for AnyMetric {
    fn vertex_susp(&self, u: VertexId, g: &DynamicGraph) -> f64 {
        match self {
            AnyMetric::Dg(m) => m.vertex_susp(u, g),
            AnyMetric::Dw(m) => m.vertex_susp(u, g),
            AnyMetric::Fd(m) => m.vertex_susp(u, g),
        }
    }

    fn edge_susp(&self, src: VertexId, dst: VertexId, raw: f64, g: &DynamicGraph) -> f64 {
        match self {
            AnyMetric::Dg(m) => m.edge_susp(src, dst, raw, g),
            AnyMetric::Dw(m) => m.edge_susp(src, dst, raw, g),
            AnyMetric::Fd(m) => m.edge_susp(src, dst, raw, g),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyMetric::Dg(m) => m.name(),
            AnyMetric::Dw(m) => m.name(),
            AnyMetric::Fd(m) => m.name(),
        }
    }
}

/// Builds an engine bootstrapped on `initial`.
pub fn bootstrap_engine(kind: MetricKind, initial: &[StreamEdge]) -> SpadeEngine<AnyMetric> {
    SpadeEngine::bootstrap(
        kind.metric(),
        SpadeConfig::default(),
        initial.iter().map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap must succeed on generated workloads")
}

/// Result of one replay run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Increment edges processed.
    pub edges: usize,
    /// Total measured processing time, microseconds.
    pub total_process_us: f64,
    /// Latency bookkeeping (stream time units = microseconds).
    pub latency: LatencyRecorder,
    /// Cumulative reorder counters.
    pub stats: ReorderStats,
    /// Reordering passes (batches or flushes).
    pub rounds: usize,
}

impl ReplayReport {
    /// Mean processing time per increment edge, microseconds.
    pub fn per_edge_us(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.total_process_us / self.edges as f64
        }
    }
}

/// Measures the static baseline: the mean duration of one full
/// from-scratch peel over the **final** graph (initial ++ increments),
/// traversing a CSR snapshot exactly like a tuned static implementation
/// would. Returns mean microseconds over `runs` runs.
pub fn measure_static_baseline(
    kind: MetricKind,
    initial: &[StreamEdge],
    increments: &[StreamEdge],
    runs: usize,
) -> f64 {
    let engine = bootstrap_engine_all(kind, initial, increments);
    let csr = CsrGraph::from_graph(engine.graph());
    let mut queue = MinQueue::new();
    // Warm-up run, then timed runs.
    let _ = peel_with_queue(&csr, &mut queue);
    let started = Instant::now();
    for _ in 0..runs.max(1) {
        std::hint::black_box(peel_with_queue(&csr, &mut queue));
    }
    started.elapsed().as_secs_f64() * 1e6 / runs.max(1) as f64
}

fn bootstrap_engine_all(
    kind: MetricKind,
    initial: &[StreamEdge],
    increments: &[StreamEdge],
) -> SpadeEngine<AnyMetric> {
    SpadeEngine::bootstrap(
        kind.metric(),
        SpadeConfig::default(),
        initial.iter().chain(increments).map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap must succeed")
}

/// Latency of the static competitor under the paper's model: detection
/// rounds of duration `round_us` run back-to-back; an edge arriving at `t`
/// is reflected by the first round that starts at or after `t` and
/// responded at that round's completion.
pub fn static_latency(increments: &[StreamEdge], round_us: f64) -> LatencyRecorder {
    let mut rec = LatencyRecorder::new();
    let d = round_us.max(1.0) as u64;
    for e in increments {
        let start = e.timestamp.div_ceil(d) * d;
        rec.record(e.timestamp, start, start + d);
    }
    rec
}

/// Replays `increments` in timestamp order with batch size `batch`,
/// measuring processing time per batch and deriving latencies through the
/// simulated clock.
pub fn measure_incremental_replay(
    kind: MetricKind,
    initial: &[StreamEdge],
    increments: &[StreamEdge],
    batch: usize,
) -> ReplayReport {
    let mut engine = bootstrap_engine(kind, initial);
    let mut clock = SimulatedClock::new();
    let mut latency = LatencyRecorder::new();
    let mut total_us = 0.0f64;
    let mut rounds = 0usize;
    let mut buf: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(batch.max(1));

    for chunk in increments.chunks(batch.max(1)) {
        buf.clear();
        buf.extend(chunk.iter().map(|e| (e.src, e.dst, e.raw)));
        let trigger = chunk.last().expect("non-empty chunk").timestamp;
        let t0 = Instant::now();
        if batch == 1 {
            let (src, dst, raw) = buf[0];
            engine.insert_edge(src, dst, raw).expect("insert");
        } else {
            engine.insert_batch(&buf).expect("batch insert");
        }
        let dur_us = t0.elapsed().as_secs_f64() * 1e6;
        total_us += dur_us;
        rounds += 1;
        let (start, done) = clock.process(trigger, dur_us.ceil() as u64);
        for e in chunk {
            latency.record(e.timestamp, start.max(e.timestamp), done);
        }
    }
    ReplayReport {
        edges: increments.len(),
        total_process_us: total_us,
        latency,
        stats: engine.total_reorder_stats(),
        rounds,
    }
}

/// Replays `increments` through the edge-grouping buffer (Algorithm 3),
/// measuring per-flush processing and deriving latencies. Returns the
/// report and the engine (for prevention attribution by the caller).
pub fn measure_grouped_replay(
    kind: MetricKind,
    initial: &[StreamEdge],
    increments: &[StreamEdge],
    config: GroupingConfig,
    mut on_flush: impl FnMut(&SpadeEngine<AnyMetric>, u64),
) -> ReplayReport {
    let mut engine = bootstrap_engine(kind, initial);
    let mut grouper = EdgeGrouper::new(config);
    let mut clock = SimulatedClock::new();
    let mut latency = LatencyRecorder::new();
    let mut total_us = 0.0f64;
    let mut rounds = 0usize;
    let mut queued: Vec<u64> = Vec::new();

    for e in increments {
        queued.push(e.timestamp);
        let t0 = Instant::now();
        let outcome = grouper.submit(&mut engine, e.src, e.dst, e.raw).expect("submit");
        let dur_us = t0.elapsed().as_secs_f64() * 1e6;
        total_us += dur_us;
        if outcome.flushed.is_some() {
            rounds += 1;
            let (start, done) = clock.process(e.timestamp, dur_us.ceil() as u64);
            for generated in queued.drain(..) {
                latency.record(generated, start.max(generated), done);
            }
            on_flush(&engine, done);
        }
    }
    // Drain the tail at the final stream timestamp.
    if !queued.is_empty() {
        let trigger = increments.last().map(|e| e.timestamp).unwrap_or(0);
        let t0 = Instant::now();
        grouper.flush(&mut engine).expect("flush");
        let dur_us = t0.elapsed().as_secs_f64() * 1e6;
        total_us += dur_us;
        rounds += 1;
        let (start, done) = clock.process(trigger, dur_us.ceil() as u64);
        for generated in queued.drain(..) {
            latency.record(generated, start.max(generated), done);
        }
        on_flush(&engine, done);
    }
    ReplayReport {
        edges: increments.len(),
        total_process_us: total_us,
        latency,
        stats: engine.total_reorder_stats(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};

    fn tiny() -> TransactionStream {
        TransactionStream::generate(&TransactionStreamConfig {
            customers: 120,
            merchants: 40,
            transactions: 1_200,
            seed: 13,
            ..Default::default()
        })
    }

    #[test]
    fn incremental_replay_counts_every_edge() {
        let s = tiny();
        let (init, inc) = s.split(0.9);
        for kind in MetricKind::ALL {
            let report = measure_incremental_replay(kind, init, inc, 10);
            assert_eq!(report.edges, inc.len());
            assert_eq!(report.latency.count(), inc.len());
            assert!(report.total_process_us > 0.0);
            assert_eq!(report.rounds, inc.len().div_ceil(10));
        }
    }

    #[test]
    fn grouped_replay_flushes_everything() {
        let s = tiny();
        let (init, inc) = s.split(0.9);
        let mut flushes = 0usize;
        let report =
            measure_grouped_replay(MetricKind::Dw, init, inc, GroupingConfig::default(), |_, _| {
                flushes += 1
            });
        assert_eq!(report.latency.count(), inc.len());
        assert_eq!(report.rounds, flushes);
        assert!(flushes >= 1);
    }

    #[test]
    fn static_baseline_is_positive_and_latency_model_holds() {
        let s = tiny();
        let (init, inc) = s.split(0.9);
        let us = measure_static_baseline(MetricKind::Dg, init, inc, 2);
        assert!(us > 0.0);
        let rec = static_latency(inc, us);
        assert_eq!(rec.count(), inc.len());
        // Every latency lies in [D, 2D).
        let d = us.max(1.0) as u64;
        for &l in rec.latencies() {
            assert!(l >= d && l < 2 * d + 2, "latency {l} outside [{d}, {})", 2 * d);
        }
    }

    #[test]
    fn metric_kind_names() {
        assert_eq!(MetricKind::Dg.name(), "DG");
        assert_eq!(MetricKind::Dw.inc_name(), "IncDW");
        assert_eq!(MetricKind::Fd.grouped_name(), "IncFDG");
    }
}
