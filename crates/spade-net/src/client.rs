//! The producer side: a batching, pipelining TCP client.
//!
//! [`SpadeNetClient`] stages submitted transactions into `Batch` frames
//! of [`ClientConfig::batch`] edges and keeps up to
//! [`ClientConfig::pipeline`] frames in flight before draining a reply —
//! so a replay saturates the socket instead of paying a round trip per
//! batch. Replies map to in-flight frames in FIFO order (the server
//! processes one connection's frames sequentially). A [`WireFrame::Busy`]
//! reply re-sends the unaccepted suffix of its batch after a short
//! back-off; [`flush`](Self::flush) drains every in-flight frame, so
//! when it returns every submitted edge has been **acknowledged** — i.e.
//! enqueued into a shard on the server.

use crate::wire::{write_frame, DetectionReply, FrameDecoder, MetricsReply, StatsReply, WireFrame};
use spade_graph::VertexId;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Tuning knobs of a [`SpadeNetClient`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Edges staged per `Batch` frame. Clamped to
    /// [`crate::wire::MAX_BATCH_EDGES`].
    pub batch: usize,
    /// Batch frames kept in flight before a reply is drained.
    pub pipeline: usize,
    /// Pause before re-sending the suffix a Busy reply bounced.
    pub busy_backoff: Duration,
    /// Per-transaction detection-latency budget to attach to every batch
    /// (shipped as a `BatchBudget` frame, protocol v2). `None` sends
    /// plain `Batch` frames a v1 server also understands; the shards
    /// then fall back to their configured default deadline.
    pub budget: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            batch: 512,
            pipeline: 32,
            busy_backoff: Duration::from_micros(200),
            budget: None,
        }
    }
}

/// Counters a client accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Edges handed to [`SpadeNetClient::submit`].
    pub edges_submitted: u64,
    /// Edges acknowledged by the server (enqueued into a shard).
    pub edges_acked: u64,
    /// Busy replies received (each one re-sent a batch suffix).
    pub busy_replies: u64,
    /// Request frames written (retries included).
    pub frames_sent: u64,
}

/// A connected producer.
pub struct SpadeNetClient {
    reader: TcpStream,
    writer: std::io::BufWriter<TcpStream>,
    decoder: FrameDecoder,
    staged: Vec<(VertexId, VertexId, f64)>,
    /// Sent-but-unacknowledged batches, in send order (== reply order).
    inflight: VecDeque<Vec<(VertexId, VertexId, f64)>>,
    stats: ClientStats,
    config: ClientConfig,
}

impl SpadeNetClient {
    /// Connects with default tuning.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<SpadeNetClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit batch/pipeline tuning.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        mut config: ClientConfig,
    ) -> std::io::Result<SpadeNetClient> {
        config.batch = config.batch.clamp(1, crate::wire::MAX_BATCH_EDGES);
        config.pipeline = config.pipeline.max(1);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(SpadeNetClient {
            reader,
            writer: std::io::BufWriter::new(stream),
            decoder: FrameDecoder::new(),
            staged: Vec::new(),
            inflight: VecDeque::new(),
            stats: ClientStats::default(),
            config,
        })
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Stages one transaction, shipping a `Batch` frame whenever the
    /// staging buffer fills. May block draining a reply when the
    /// pipeline window is full.
    pub fn submit(&mut self, src: VertexId, dst: VertexId, raw: f64) -> std::io::Result<()> {
        self.stats.edges_submitted += 1;
        self.staged.push((src, dst, raw));
        if self.staged.len() >= self.config.batch {
            let batch = std::mem::take(&mut self.staged);
            self.send_batch(batch)?;
        }
        Ok(())
    }

    /// Ships every staged edge, drains every in-flight frame (retrying
    /// Busy suffixes until acknowledged), then issues a wire-level Flush
    /// so shards apply buffered benign edges. On return, every submitted
    /// edge sits in a shard queue on the server.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.staged.is_empty() {
            let batch = std::mem::take(&mut self.staged);
            self.send_batch(batch)?;
        }
        while !self.inflight.is_empty() {
            self.drain_one()?;
        }
        self.request(&WireFrame::Flush)?;
        match self.read_reply()? {
            WireFrame::Ack { .. } => Ok(()),
            other => Err(unexpected(&other, "Ack")),
        }
    }

    /// Flushes, then asks for the merged global detection.
    pub fn detect(&mut self) -> std::io::Result<DetectionReply> {
        self.flush()?;
        self.request(&WireFrame::Detect)?;
        match self.read_reply()? {
            WireFrame::Detection(reply) => Ok(reply),
            other => Err(unexpected(&other, "Detection")),
        }
    }

    /// Flushes, then asks for runtime + transport statistics.
    pub fn server_stats(&mut self) -> std::io::Result<StatsReply> {
        self.flush()?;
        self.request(&WireFrame::Stats)?;
        match self.read_reply()? {
            WireFrame::StatsReply(reply) => Ok(reply),
            other => Err(unexpected(&other, "StatsReply")),
        }
    }

    /// Flushes, then asks for the merged metrics snapshot rendered as
    /// Prometheus text exposition (per-stage latency histograms, repair
    /// and migration counters, transport totals and per-connection
    /// series).
    pub fn server_metrics(&mut self) -> std::io::Result<MetricsReply> {
        self.flush()?;
        self.request(&WireFrame::Metrics)?;
        match self.read_reply()? {
            WireFrame::MetricsReply(reply) => Ok(reply),
            other => Err(unexpected(&other, "MetricsReply")),
        }
    }

    /// Flushes, then sends the end-of-stream Shutdown marker that stops
    /// the server (the replay coordinator calls this once all producers
    /// have finished).
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        self.flush()?;
        self.request(&WireFrame::Shutdown)?;
        match self.read_reply()? {
            WireFrame::Ack { .. } => Ok(()),
            other => Err(unexpected(&other, "Ack")),
        }
    }

    /// Flushes and hands back the lifetime counters.
    pub fn finish(mut self) -> std::io::Result<ClientStats> {
        self.flush()?;
        Ok(self.stats)
    }

    /// Sends one request frame immediately (no pipelining).
    fn request(&mut self, frame: &WireFrame) -> std::io::Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.stats.frames_sent += 1;
        self.writer.flush()
    }

    /// Ships `batch` as one frame, first draining a reply if the
    /// pipeline window is full.
    fn send_batch(&mut self, batch: Vec<(VertexId, VertexId, f64)>) -> std::io::Result<()> {
        while self.inflight.len() >= self.config.pipeline {
            self.drain_one()?;
        }
        self.write_batch(batch)
    }

    /// Writes one `Batch` (or, with a configured budget, `BatchBudget`)
    /// frame and parks the edges in the in-flight window (moved, not
    /// cloned — the frame borrows them transiently so the hot path pays
    /// only the encode copy).
    fn write_batch(&mut self, batch: Vec<(VertexId, VertexId, f64)>) -> std::io::Result<()> {
        // Saturate instead of wrapping a >71-minute budget; u32::MAX
        // microseconds is already far beyond any real-time SLO.
        let budget_us =
            self.config.budget.map(|b| u32::try_from(b.as_micros()).unwrap_or(u32::MAX));
        let frame = match budget_us {
            Some(budget_us) => WireFrame::BatchBudget { budget_us, edges: batch },
            None => WireFrame::Batch { edges: batch },
        };
        write_frame(&mut self.writer, &frame)?;
        self.stats.frames_sent += 1;
        self.writer.flush()?;
        let (WireFrame::Batch { edges } | WireFrame::BatchBudget { edges, .. }) = frame else {
            unreachable!("constructed above")
        };
        self.inflight.push_back(edges);
        Ok(())
    }

    /// Consumes replies until one in-flight slot frees up for good. A
    /// Busy reply re-sends the bounced suffix (which re-enters the
    /// in-flight window at the back, preserving FIFO reply matching) and
    /// keeps draining — iterative, so sustained back-pressure cannot
    /// recurse.
    fn drain_one(&mut self) -> std::io::Result<()> {
        loop {
            let reply = self.read_reply()?;
            let Some(batch) = self.inflight.pop_front() else {
                return Err(unexpected(&reply, "no request in flight"));
            };
            match reply {
                WireFrame::Ack { accepted } => {
                    self.stats.edges_acked += accepted;
                    debug_assert_eq!(accepted as usize, batch.len());
                    return Ok(());
                }
                WireFrame::Busy { accepted } => {
                    self.stats.edges_acked += accepted;
                    self.stats.busy_replies += 1;
                    // Clamp against a nonsensical accepted count — a
                    // protocol violation must not become a panic.
                    let rest = batch[(accepted as usize).min(batch.len())..].to_vec();
                    std::thread::sleep(self.config.busy_backoff);
                    self.write_batch(rest)?;
                    // Window size is unchanged (popped one, pushed one):
                    // keep draining until an Ack frees a slot.
                }
                WireFrame::Error { message } => {
                    return Err(std::io::Error::other(format!("server error: {message}")));
                }
                other => return Err(unexpected(&other, "Ack or Busy")),
            }
        }
    }

    /// Blocks until one reply frame is reassembled.
    fn read_reply(&mut self) -> std::io::Result<WireFrame> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame().map_err(std::io::Error::from)? {
                return Ok(frame);
            }
            let n = self.reader.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-reply",
                ));
            }
            self.decoder.extend(&chunk[..n]);
        }
    }
}

fn unexpected(got: &WireFrame, wanted: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("protocol violation: expected {wanted}, got {got:?}"),
    )
}
