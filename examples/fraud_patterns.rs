//! End-to-end reproduction of the paper's case studies (Fig. 12/13): a
//! Grab-like transaction stream with the three injected fraud patterns,
//! streamed through the incremental engine, then enumerated into
//! individual instances (Appendix C.2 / Fig. 15).
//!
//! Run with: `cargo run --release --example fraud_patterns`

use spade::core::{enumerate_static, EnumerationConfig, SpadeEngine, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use std::collections::HashSet;

fn main() {
    // A marketplace with 4000 customers and 1200 merchants.
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 4_000,
        merchants: 1_200,
        transactions: 30_000,
        seed: 20_240_613,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 2,
            transactions_per_instance: 200,
            amount: 300.0,
            ..Default::default()
        },
    );
    println!(
        "stream: {} transactions, {} labeled fraudulent across {} instances",
        injected.edges.len(),
        injected.edges.iter().filter(|e| e.is_fraud()).count(),
        injected.instances.len()
    );

    // Stream everything through the incremental engine.
    let mut engine = SpadeEngine::new(WeightedDensity);
    for e in &injected.edges {
        engine.insert_edge(e.src, e.dst, e.raw).expect("valid edge");
    }
    let det = engine.detect();
    println!("\ncurrent densest community: {} members, density {:.1}", det.size, det.density);

    // Enumerate separate fraud instances (Appendix C.2).
    let instances = enumerate_static(
        engine.graph(),
        EnumerationConfig {
            max_instances: 8,
            min_density: det.density / 20.0,
            ..Default::default()
        },
    );
    println!("\nenumerated {} dense communities:", instances.len());
    for (rank, inst) in instances.iter().enumerate() {
        let members: HashSet<u32> = inst.members.iter().map(|u| u.0).collect();
        // Match against ground truth.
        let best = injected
            .instances
            .iter()
            .map(|gt| {
                let overlap = gt.members.iter().filter(|m| members.contains(&m.0)).count();
                (overlap, gt)
            })
            .max_by_key(|(o, _)| *o)
            .expect("ground truth nonempty");
        let (overlap, gt) = best;
        let recall = overlap as f64 / gt.members.len() as f64;
        println!(
            "  #{rank}: {} members, density {:>8.1} -> best match: instance {} ({}) recall {:.0}%",
            inst.members.len(),
            inst.density,
            gt.instance,
            gt.pattern.name(),
            recall * 100.0
        );
    }

    let matched = instances.len();
    assert!(matched >= 2, "expected to enumerate at least two dense instances");
}
